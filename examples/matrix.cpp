//===- examples/matrix.cpp - Lea's Matrix customization scenario -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2 cites Lea's hand-simulated customization of a C++ Matrix
/// hierarchy (order-of-magnitude speedups).  This example builds that
/// scenario in Mica: dense / diagonal / zero matrix representations with a
/// polymorphic element accessor, and a generic multiply whose inner loop
/// sends getAt on two pass-through formals — then compares all five
/// Table 1 configurations on it.
///
/// Run: build/examples/matrix
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "driver/Report.h"

#include <iostream>

using namespace selspec;

static const char *MatrixSource = R"(
  class Matrix { slot n; }
  class DenseMatrix isa Matrix { slot cells; }
  class DiagMatrix isa Matrix { slot diag; }
  class ZeroMatrix isa Matrix;

  method denseNew(n@Int, seed@Int) {
    let cells := array(n * n);
    let i := 0;
    while (i < n * n) {
      atPut(cells, i, (i * seed + 3) % 10);
      i := i + 1;
    }
    new DenseMatrix { n := n, cells := cells };
  }
  method diagNew(n@Int, seed@Int) {
    let d := array(n);
    let i := 0;
    while (i < n) { atPut(d, i, (i * seed + 1) % 10); i := i + 1; }
    new DiagMatrix { n := n, diag := d };
  }
  method zeroNew(n@Int) { new ZeroMatrix { n := n }; }

  // The polymorphic element accessor Lea's example customizes away.
  method getAt(m@DenseMatrix, i@Int, j@Int) { at(m.cells, i * m.n + j); }
  method getAt(m@DiagMatrix, i@Int, j@Int) {
    if (i == j) { at(m.diag, i); } else { 0; }
  }
  method getAt(m@ZeroMatrix, i@Int, j@Int) { 0; }

  // Generic multiply: a and b flow straight into the dispatched getAt
  // sends of the O(n^3) inner loop — the pass-through pattern.
  method mulSum(a@Matrix, b@Matrix) {
    let n := a.n;
    let total := 0;
    let i := 0;
    while (i < n) {
      let j := 0;
      while (j < n) {
        let acc := 0;
        let k := 0;
        while (k < n) {
          acc := acc + getAt(a, i, k) * getAt(b, k, j);
          k := k + 1;
        }
        total := (total + acc) % 1000003;
        j := j + 1;
      }
      i := i + 1;
    }
    total;
  }

  method main(n@Int) {
    let d := denseNew(n, 7);
    let g := diagNew(n, 5);
    let z := zeroNew(n);
    // The hot pair is dense x diag (as in Lea's example); the others keep
    // the site polymorphic.
    let checksum := 0;
    let r := 0;
    while (r < 6) {
      checksum := (checksum + mulSum(d, g)) % 1000003;
      r := r + 1;
    }
    checksum := (checksum + mulSum(g, d) + mulSum(d, z)) % 1000003;
    print(checksum);
  }
)";

int main() {
  std::cout << "Lea's Matrix scenario: generic multiply over dense / "
               "diagonal / zero matrices\n\n";

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({MatrixSource}, Err, /*WithStdlib=*/false);
  if (!W) {
    std::cerr << Err;
    return 1;
  }
  if (!W->collectProfile(10, Err)) {
    std::cerr << Err << '\n';
    return 1;
  }

  SelectiveOptions Sel;
  Sel.SpecializationThreshold = 1000; // the paper's default

  TextTable T({"Config", "Dispatches", "vs Base", "Cycles", "Speedup",
               "Routines"});
  uint64_t BaseDispatch = 0, BaseCycles = 0;
  for (Config C : {Config::Base, Config::Cust, Config::CustMM, Config::CHA,
                   Config::Selective}) {
    std::optional<ConfigResult> R = W->runConfig(C, 12, Err, Sel);
    if (!R) {
      std::cerr << configName(C) << ": " << Err << '\n';
      return 1;
    }
    if (C == Config::Base) {
      BaseDispatch = R->Run.totalDispatches();
      BaseCycles = R->Run.Cycles;
    }
    T.addRow({configName(C), TextTable::count(R->Run.totalDispatches()),
              TextTable::ratio(static_cast<double>(R->Run.totalDispatches()) /
                               static_cast<double>(BaseDispatch)),
              TextTable::count(R->Run.Cycles),
              TextTable::ratio(static_cast<double>(BaseCycles) /
                               static_cast<double>(R->Run.Cycles)),
              TextTable::count(R->CompiledRoutines)});
  }
  T.print(std::cout);
  std::cout << "\nSelective specializes mulSum for the profiled "
               "(DenseMatrix, DiagMatrix) pair, making\nboth getAt sends "
               "static (then inlined) in the hot version while keeping "
               "one general\ncopy for the cold pairs.\n";
  return 0;
}

//===- bench/ablation_cascade.cpp - Section 3.3 cascade value --------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3: specializing a callee can force formerly statically-bound
/// callers to select versions at run time; cascading specializations
/// upward repairs this.  This bench runs Selective with cascading on and
/// off and reports the run-time version selections ("converted"
/// dispatches) and total dispatch counts.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Value of cascading specializations", "Section 3.3");

  TextTable T({"Program", "Selects (no cascade)", "Selects (cascade)",
               "Dispatches (no cascade)", "Dispatches (cascade)",
               "Routines (no cascade)", "Routines (cascade)"});
  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    if (!W->collectProfile(P.TrainInput, Err)) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }

    SelectiveOptions NoCascade;
    NoCascade.CascadeSpecializations = false;
    SelectiveOptions WithCascade;

    std::optional<ConfigResult> Off =
        W->runConfig(Config::Selective, P.TestInput, Err, NoCascade);
    std::optional<ConfigResult> On =
        W->runConfig(Config::Selective, P.TestInput, Err, WithCascade);
    if (!Off || !On) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    T.addRow({P.Name, TextTable::count(Off->Run.VersionSelects),
              TextTable::count(On->Run.VersionSelects),
              TextTable::count(Off->Run.totalDispatches()),
              TextTable::count(On->Run.totalDispatches()),
              TextTable::count(Off->CompiledRoutines),
              TextTable::count(On->CompiledRoutines)});
  }
  T.print(std::cout);
  std::cout << "\nCascading trades a few extra compiled routines for "
               "fewer run-time version\nselections along hot "
               "statically-bound pass-through chains.\n";
  return 0;
}

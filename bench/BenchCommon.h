//===- bench/BenchCommon.h - Shared harness for figure benches -*- C++ -*-===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 2 benchmark suite (programs + train/test inputs) and the
/// "run every Table 1 configuration" helper shared by the per-figure
/// bench binaries.  Profiles are gathered on the train input and results
/// measured on the test input, exactly as the paper does for its two
/// larger programs.
///
//===----------------------------------------------------------------------===//

#ifndef SELSPEC_BENCH_BENCHCOMMON_H
#define SELSPEC_BENCH_BENCHCOMMON_H

#include "driver/Pipeline.h"
#include "driver/Report.h"

#include <array>
#include <string>
#include <vector>

namespace selspec {
namespace bench {

struct BenchProgram {
  std::string Name;
  std::string Description;
  std::vector<std::string> Files;
  /// Input used for the profiling (training) run.
  int64_t TrainInput;
  /// Input used for the measured (test) run.
  int64_t TestInput;
};

/// The Table 2 suite.
const std::vector<BenchProgram> &table2Suite();

/// All five Table 1 configurations, in the paper's order.
inline const std::array<Config, 5> AllConfigs = {
    Config::Base, Config::Cust, Config::CustMM, Config::CHA,
    Config::Selective};

struct SuiteResult {
  BenchProgram Program;
  /// One result per AllConfigs entry.
  std::vector<ConfigResult> ByConfig;
  /// Source line count (Table 2).
  unsigned SourceLines = 0;
};

/// Loads \p Program, profiles on the train input, and runs the test input
/// under every configuration.  Exits with a message on failure.
SuiteResult runSuiteProgram(const BenchProgram &Program,
                            const SelectiveOptions &Sel = {});

/// Like runSuiteProgram for only the given configs.
SuiteResult runSuiteProgram(const BenchProgram &Program,
                            const std::vector<Config> &Configs,
                            const SelectiveOptions &Sel);

/// Writes BENCH_<name>.json in the working directory: one record per
/// configuration with the dispatch counters, modeled cycles and measured
/// wall-clock, plus the execution tier and `git describe` of the tree,
/// for machine consumption (the files are gitignored).  Overwriting a
/// file measured on a different tier warns on stderr.  Returns false
/// (after a warning on stderr) if the file cannot be written; benches
/// proceed regardless.
bool writeBenchJson(const SuiteResult &R);

/// `git describe --always --dirty` of the working tree, or "unknown"
/// when git is unavailable — stamped into every BENCH_*.json.
std::string gitDescribe();

/// Prints the standard bench header.
void printHeader(const std::string &Title, const std::string &PaperRef);

} // namespace bench
} // namespace selspec

#endif // SELSPEC_BENCH_BENCHCOMMON_H

//===- bench/sensitivity_costmodel.cpp - Cost-model robustness -------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-speed axis of Figure 5 rests on a modeled cycle count
/// (DESIGN.md's substitution for the authors' hardware).  This bench
/// checks that the reproduction's *qualitative* conclusions do not depend
/// on the model's constants: it sweeps the dynamic-dispatch cost over a
/// 4x range (and scales the related dispatch-mechanism costs with it) and
/// verifies that the configuration ordering — Selective fastest, Base
/// slowest — is preserved at every point.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Cost-model sensitivity of the Figure 5 speed ordering",
              "DESIGN.md substitution check");

  bool OrderingHeld = true;
  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    if (!W->collectProfile(P.TrainInput, Err)) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }

    TextTable T({"Dispatch cost", "Cust", "Cust-MM", "CHA", "Selective",
                 "Selective fastest?"});
    for (uint64_t DispatchCost : {8u, 15u, 30u}) {
      CostModel CM;
      CM.DynamicDispatchCost = DispatchCost;
      CM.VersionSelectCost = DispatchCost * 2 / 5;
      CM.StaticCallCost = DispatchCost / 4 + 1;
      CM.ClosureCallCost = DispatchCost / 2 + 1;

      double BaseCycles = 0;
      std::vector<double> Speedups;
      bool SelectiveFastest = true;
      for (Config C : {Config::Base, Config::Cust, Config::CustMM,
                       Config::CHA, Config::Selective}) {
        std::optional<ConfigResult> R =
            W->runConfig(C, P.TestInput, Err, {}, {}, CM);
        if (!R) {
          std::cerr << "error: " << Err << '\n';
          return 1;
        }
        if (C == Config::Base)
          BaseCycles = static_cast<double>(R->Run.Cycles);
        Speedups.push_back(BaseCycles /
                           static_cast<double>(R->Run.Cycles));
      }
      for (size_t I = 0; I + 1 < Speedups.size(); ++I)
        SelectiveFastest &= Speedups.back() >= Speedups[I] - 1e-9;
      OrderingHeld &= SelectiveFastest;

      T.addRow({TextTable::count(DispatchCost),
                TextTable::ratio(Speedups[1]), TextTable::ratio(Speedups[2]),
                TextTable::ratio(Speedups[3]), TextTable::ratio(Speedups[4]),
                SelectiveFastest ? "yes" : "NO"});
    }
    std::cout << P.Name << " (speedups vs Base at each dispatch cost)\n";
    T.print(std::cout);
    std::cout << '\n';
  }
  std::cout << (OrderingHeld
                    ? "Ordering preserved at every swept cost point.\n"
                    : "WARNING: ordering depends on the cost model!\n");
  return OrderingHeld ? 0 : 1;
}

//===- bench/ablation_threshold.cpp - Section 3.4 trade-off ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.4: the SpecializationThreshold trades code space against
/// dispatch elimination.  This bench sweeps the threshold over several
/// decades for every program (paper default: 1,000), and also exercises
/// the alternative fixed-space-budget heuristic.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("SpecializationThreshold sweep", "Section 3.4");

  const uint64_t Thresholds[] = {1, 10, 100, 1000, 10000, 100000};

  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    if (!W->collectProfile(P.TrainInput, Err)) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    std::optional<ConfigResult> Base =
        W->runConfig(Config::Base, P.TestInput, Err);
    if (!Base) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    double BaseDispatch =
        static_cast<double>(Base->Run.totalDispatches());
    double BaseCycles = static_cast<double>(Base->Run.Cycles);

    TextTable T({"Threshold", "Routines", "Dispatches vs Base",
                 "Speedup vs Base"});
    for (uint64_t Th : Thresholds) {
      SelectiveOptions Sel;
      Sel.SpecializationThreshold = Th;
      std::optional<ConfigResult> R =
          W->runConfig(Config::Selective, P.TestInput, Err, Sel);
      if (!R) {
        std::cerr << "error: " << Err << '\n';
        return 1;
      }
      T.addRow({TextTable::count(Th), TextTable::count(R->CompiledRoutines),
                TextTable::ratio(R->Run.totalDispatches() / BaseDispatch),
                TextTable::ratio(BaseCycles /
                                 static_cast<double>(R->Run.Cycles))});
    }
    std::cout << P.Name << " (Base: "
              << TextTable::count(Base->Run.totalDispatches())
              << " dispatches, " << TextTable::count(Base->CompiledRoutines)
              << " routines)\n";
    T.print(std::cout);

    // Section 3.4's alternative: a fixed space budget consumed in
    // decreasing arc-weight order.
    TextTable B({"Budget (versions)", "Routines (by weight)",
                 "Dispatches (by weight)", "Routines (benefit/cost)",
                 "Dispatches (benefit/cost)"});
    for (unsigned Budget : {1u, 4u, 16u, 64u}) {
      SelectiveOptions ByWeight;
      ByWeight.SpaceBudgetVersions = Budget;
      SelectiveOptions ByBenefit = ByWeight;
      ByBenefit.UseBenefitCostOrder = true;
      std::optional<ConfigResult> RW =
          W->runConfig(Config::Selective, P.TestInput, Err, ByWeight);
      std::optional<ConfigResult> RB =
          W->runConfig(Config::Selective, P.TestInput, Err, ByBenefit);
      if (!RW || !RB) {
        std::cerr << "error: " << Err << '\n';
        return 1;
      }
      B.addRow({TextTable::count(Budget),
                TextTable::count(RW->CompiledRoutines),
                TextTable::ratio(RW->Run.totalDispatches() / BaseDispatch),
                TextTable::count(RB->CompiledRoutines),
                TextTable::ratio(RB->Run.totalDispatches() / BaseDispatch)});
    }
    std::cout << "space-budget heuristics (Section 3.4 alternatives):\n";
    B.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Paper: the simple threshold heuristic (1,000) was 'more "
               "than adequate';\nlower thresholds buy little extra speed "
               "for noticeably more code.\n";
  return 0;
}

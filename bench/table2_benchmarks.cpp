//===- bench/table2_benchmarks.cpp - Table 2 reproduction ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: the benchmark suite — name, size, description, plus the
/// train/test inputs this reproduction uses and basic workload counts
/// from a Base run.  Also runs the measured suite on the current
/// execution tier and writes BENCH_table2_benchmarks.json, the aggregate
/// wall-clock record the perf acceptance checks read.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <fstream>
#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Table 2: benchmark programs", "Table 2");

  TextTable T({"Program", "Lines", "Methods", "Call sites", "Train", "Test",
               "Description"});
  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    T.addRow({P.Name, TextTable::count(W->sourceLines()),
              TextTable::count(W->program().numUserMethods()),
              TextTable::count(W->program().numCallSites()),
              TextTable::count(static_cast<uint64_t>(P.TrainInput)),
              TextTable::count(static_cast<uint64_t>(P.TestInput)),
              P.Description});
  }
  T.print(std::cout);
  std::cout << "\nLine counts include the shared Mica standard library "
               "(as the paper's counts\ninclude Cecil's 8,500-line "
               "library); typechecker and compiler share the\nminilang "
               "front end, mirroring the paper's ~12,000 shared lines.\n";

  // Measured suite on the current tier (also refreshes each program's
  // BENCH_<name>.json), aggregated into one machine-readable file.
  std::vector<SuiteResult> Results;
  for (const BenchProgram &P : table2Suite())
    Results.push_back(runSuiteProgram(P));

  const char *Tier = tierName(Results.front().ByConfig.front().Tier);
  std::ofstream OS("BENCH_table2_benchmarks.json");
  if (!OS) {
    std::cerr << "warning: cannot write BENCH_table2_benchmarks.json\n";
    return 0;
  }
  OS << "{\n"
     << "  \"tier\": \"" << Tier << "\",\n"
     << "  \"git_describe\": \"" << gitDescribe() << "\",\n"
     << "  \"programs\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const SuiteResult &R = Results[I];
    OS << "    {\n"
       << "      \"benchmark\": \"" << R.Program.Name << "\",\n"
       << "      \"source_lines\": " << R.SourceLines << ",\n"
       << "      \"train_input\": " << R.Program.TrainInput << ",\n"
       << "      \"test_input\": " << R.Program.TestInput << ",\n"
       << "      \"configs\": [\n";
    for (size_t J = 0; J != R.ByConfig.size(); ++J) {
      const ConfigResult &CR = R.ByConfig[J];
      OS << "        {\"config\": \"" << configName(CR.Configuration)
         << "\", \"tier\": \"" << tierName(CR.Tier)
         << "\", \"wall_ns\": " << CR.WallNanos
         << ", \"cycles\": " << CR.Run.Cycles
         << ", \"dispatches\": " << CR.Run.totalDispatches() << "}"
         << (J + 1 == R.ByConfig.size() ? "" : ",") << "\n";
    }
    OS << "      ]\n    }" << (I + 1 == Results.size() ? "" : ",") << "\n";
  }
  OS << "  ]\n}\n";
  std::cout << "\nWrote BENCH_table2_benchmarks.json (tier: " << Tier
            << ").\n";
  return 0;
}

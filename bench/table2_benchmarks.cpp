//===- bench/table2_benchmarks.cpp - Table 2 reproduction ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: the benchmark suite — name, size, description, plus the
/// train/test inputs this reproduction uses and basic workload counts
/// from a Base run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Table 2: benchmark programs", "Table 2");

  TextTable T({"Program", "Lines", "Methods", "Call sites", "Train", "Test",
               "Description"});
  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    T.addRow({P.Name, TextTable::count(W->sourceLines()),
              TextTable::count(W->program().numUserMethods()),
              TextTable::count(W->program().numCallSites()),
              TextTable::count(static_cast<uint64_t>(P.TrainInput)),
              TextTable::count(static_cast<uint64_t>(P.TestInput)),
              P.Description});
  }
  T.print(std::cout);
  std::cout << "\nLine counts include the shared Mica standard library "
               "(as the paper's counts\ninclude Cecil's 8,500-line "
               "library); typechecker and compiler share the\nminilang "
               "front end, mirroring the paper's ~12,000 shared lines.\n";
  return 0;
}

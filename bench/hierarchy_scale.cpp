//===- bench/hierarchy_scale.cpp - Hierarchy-axis scaling bench -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ROADMAP's hierarchy-axis scaling study: the paper's benchmarks top
/// out at modest class counts, so this bench synthesizes structured
/// hierarchies (fuzz::generateHierarchyProgram) at 100 -> 1k -> 10k
/// classes, each with megamorphic k-way call sites, and measures how the
/// system degrades — or, with interval cones and hybrid ClassSets,
/// doesn't:
///
///   - per-config, per-tier measured runs (all 5 Table 1 configurations
///     x AST + bytecode tiers) with wall-clock ns per dynamic dispatch;
///   - compressed DispatchTable cells and direct table-lookup ns/op;
///   - cone memory: the hierarchy's interval index plus materialized
///     hybrid cone sets, against the N * N/8-byte dense baseline;
///   - program build (parse -> resolve -> analyses) wall time.
///
/// Output: stdout table plus BENCH_hierarchy_scale.json (gitignored, with
/// the counter registry embedded).  The CI smoke and the nightly 10k-ASan
/// job re-derive the scaling invariants (near-flat dispatch ns/op,
/// sub-linear cone + table bytes) from the JSON in python.
///
/// Environment: SELSPEC_HIERARCHY_SIZES (comma list, default
/// "100,1000,10000"), SELSPEC_HIERARCHY_INPUT (spin iterations, default
/// 20000), SELSPEC_HIERARCHY_LEAVES (k-way fanout, default 32).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fuzz/ProgramGen.h"
#include "runtime/DispatchTable.h"
#include "support/Metrics.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace selspec;
using namespace selspec::bench;

namespace {

uint64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<unsigned> parseSizes() {
  std::vector<unsigned> Sizes;
  const char *Env = std::getenv("SELSPEC_HIERARCHY_SIZES");
  std::string Spec = Env && *Env ? Env : "100,1000,10000";
  std::stringstream SS(Spec);
  std::string Tok;
  while (std::getline(SS, Tok, ','))
    if (!Tok.empty())
      Sizes.push_back(static_cast<unsigned>(std::strtoul(Tok.c_str(),
                                                         nullptr, 10)));
  return Sizes;
}

uint64_t envOr(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  return V && *V ? std::strtoull(V, nullptr, 10) : Default;
}

struct ConfigRow {
  Config Configuration;
  ExecTier Tier;
  uint64_t WallNanos = 0;
  uint64_t Dispatches = 0;
  double NsPerDispatch = 0;
};

struct SizeRow {
  unsigned Classes = 0;  ///< synthesized classes (knob)
  unsigned Universe = 0; ///< hierarchy size incl. builtins
  unsigned MethodLeaves = 0;
  uint64_t BuildNanos = 0;
  size_t ConeIndexBytes = 0;
  size_t ConeSetBytes = 0;
  size_t DenseConeBytes = 0;
  size_t ConeIntervals = 0;
  size_t TableCells = 0;
  size_t TableUncompressedCells = 0;
  double TableLookupNs = 0;
  std::vector<ConfigRow> Rows;
};

} // namespace

int main() {
  printHeader("Hierarchy-axis scaling: 100 -> 1k -> 10k classes",
              "ROADMAP scaling item; cf. paper §3.5 dispatch tables");

  const std::vector<unsigned> Sizes = parseSizes();
  const int64_t Input =
      static_cast<int64_t>(envOr("SELSPEC_HIERARCHY_INPUT", 20000));
  const unsigned Leaves =
      static_cast<unsigned>(envOr("SELSPEC_HIERARCHY_LEAVES", 32));

  std::vector<SizeRow> Results;
  for (unsigned NumClasses : Sizes) {
    fuzz::HierarchySpec Spec;
    Spec.Classes = NumClasses;
    Spec.Depth = 12;
    Spec.Fanout = 8;
    Spec.MethodLeaves = Leaves;
    Spec.Generics = 4;
    Spec.Seed = 20260808;
    std::string Source = fuzz::generateHierarchyProgram(Spec);

    uint64_t T0 = nowNs();
    std::string Err;
    auto WB = Workbench::fromSources({Source}, Err, /*WithStdlib=*/false);
    uint64_t BuildNanos = nowNs() - T0;
    if (!WB) {
      std::cerr << "hierarchy_scale: build failed at " << NumClasses
                << " classes: " << Err << "\n";
      return 1;
    }
    if (!WB->collectProfile(/*Input=*/2000, Err)) {
      std::cerr << "hierarchy_scale: profile failed at " << NumClasses
                << " classes: " << Err << "\n";
      return 1;
    }

    Program &P = WB->program();
    const ClassHierarchy &H = P.Classes;

    SizeRow Row;
    Row.Classes = NumClasses;
    Row.Universe = H.size();
    Row.MethodLeaves = Leaves;
    Row.BuildNanos = BuildNanos;
    Row.ConeIndexBytes = H.coneIndexBytes();
    for (unsigned I = 0; I != H.size(); ++I) {
      Row.ConeSetBytes += H.cone(ClassId(I)).memoryBytes();
      Row.ConeIntervals += H.coneIntervalCount(ClassId(I));
    }
    Row.DenseConeBytes =
        size_t(H.size()) * ((size_t(H.size()) + 63) / 64) * 8;

    // Compressed dispatch tables over every generic, plus a direct
    // lookup microloop cycling the megamorphic receivers through g0.
    DispatchTableSet Tables(P);
    Row.TableCells = Tables.totalCells();
    Row.TableUncompressedCells = Tables.totalUncompressedCells();
    {
      GenericId G = P.lookupGeneric(P.Syms.find("g0"), 1);
      const DispatchTable &T = Tables.forGeneric(G);
      std::vector<std::vector<ClassId>> Cases;
      for (unsigned J = 0;; ++J) {
        ClassId C = H.lookup(P.Syms.find("H" + std::to_string(J)));
        if (!C.isValid())
          break;
        if (H.isLeaf(C))
          Cases.push_back({C});
        if (Cases.size() >= 64)
          break;
      }
      const uint64_t Iters = 2000000;
      uint64_t L0 = nowNs();
      MethodId Sink;
      for (uint64_t I = 0; I != Iters; ++I) {
        Sink = T.lookup(Cases[I % Cases.size()]);
        asm volatile("" : : "r"(&Sink) : "memory");
      }
      Row.TableLookupNs = double(nowNs() - L0) / double(Iters);
    }

    // Measured runs: all five configurations on both tiers; outputs must
    // agree bit-for-bit (the synthesized checksum catches misdispatch).
    std::string Reference;
    const unsigned Reps =
        static_cast<unsigned>(envOr("SELSPEC_HIERARCHY_REPS", 3));
    for (ExecTier Tier : {ExecTier::Bytecode, ExecTier::Ast}) {
      WB->setTier(Tier);
      for (Config C : AllConfigs) {
        // Best-of-Reps wall time: single runs at these sizes are a few
        // ms, where scheduler noise would swamp the flatness comparison.
        ConfigRow CR;
        CR.Configuration = C;
        for (unsigned Rep = 0; Rep != Reps; ++Rep) {
          auto R = WB->runConfig(C, Input, Err);
          if (!R || R->Trap != TrapKind::None) {
            std::cerr << "hierarchy_scale: " << configName(C) << "/"
                      << tierName(Tier) << " failed at " << NumClasses
                      << " classes: " << Err << "\n";
            return 1;
          }
          if (Reference.empty())
            Reference = R->Output;
          else if (R->Output != Reference) {
            std::cerr << "hierarchy_scale: output mismatch for "
                      << configName(C) << "/" << tierName(Tier) << " at "
                      << NumClasses << " classes\n";
            return 1;
          }
          CR.Tier = R->Tier;
          CR.Dispatches = R->Run.totalDispatches();
          if (Rep == 0 || R->WallNanos < CR.WallNanos)
            CR.WallNanos = R->WallNanos;
        }
        CR.NsPerDispatch =
            double(CR.WallNanos) /
            double(CR.Dispatches == 0 ? 1 : CR.Dispatches);
        Row.Rows.push_back(CR);
      }
    }

    std::cout << "classes=" << Row.Universe << " build_ms="
              << Row.BuildNanos / 1000000 << " cone_bytes="
              << (Row.ConeIndexBytes + Row.ConeSetBytes) << " (dense "
              << Row.DenseConeBytes << ") table_cells=" << Row.TableCells
              << " (uncompressed " << Row.TableUncompressedCells
              << ") table_lookup_ns=" << Row.TableLookupNs << "\n";
    for (const ConfigRow &CR : Row.Rows)
      std::cout << "  " << tierName(CR.Tier) << "/" << configName(CR.Configuration)
                << ": wall_ms=" << CR.WallNanos / 1000000
                << " dispatches=" << CR.Dispatches
                << " ns_per_dispatch=" << CR.NsPerDispatch << "\n";
    Results.push_back(std::move(Row));
  }

  std::ofstream OS("BENCH_hierarchy_scale.json");
  if (!OS) {
    std::cerr << "hierarchy_scale: cannot write BENCH_hierarchy_scale.json\n";
    return 1;
  }
  OS << "{\n  \"bench\": \"hierarchy_scale\",\n  \"git\": \""
     << gitDescribe() << "\",\n  \"input\": " << Input
     << ",\n  \"sizes\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const SizeRow &Row = Results[I];
    OS << "    {\n      \"classes\": " << Row.Classes
       << ",\n      \"universe\": " << Row.Universe
       << ",\n      \"method_leaves\": " << Row.MethodLeaves
       << ",\n      \"build_ns\": " << Row.BuildNanos
       << ",\n      \"cone_index_bytes\": " << Row.ConeIndexBytes
       << ",\n      \"cone_set_bytes\": " << Row.ConeSetBytes
       << ",\n      \"dense_cone_bytes\": " << Row.DenseConeBytes
       << ",\n      \"cone_intervals\": " << Row.ConeIntervals
       << ",\n      \"table_cells\": " << Row.TableCells
       << ",\n      \"table_uncompressed_cells\": "
       << Row.TableUncompressedCells
       << ",\n      \"table_lookup_ns\": " << Row.TableLookupNs
       << ",\n      \"configs\": [\n";
    for (size_t J = 0; J != Row.Rows.size(); ++J) {
      const ConfigRow &CR = Row.Rows[J];
      OS << "        {\"config\": \"" << configName(CR.Configuration)
         << "\", \"tier\": \"" << tierName(CR.Tier)
         << "\", \"wall_ns\": " << CR.WallNanos
         << ", \"dispatches\": " << CR.Dispatches
         << ", \"ns_per_dispatch\": " << CR.NsPerDispatch << "}"
         << (J + 1 == Row.Rows.size() ? "\n" : ",\n");
    }
    OS << "      ]\n    }" << (I + 1 == Results.size() ? "\n" : ",\n");
  }
  OS << "  ],\n  \"counters\": " << metrics::toJsonCompact() << "\n}\n";
  std::cout << "wrote BENCH_hierarchy_scale.json\n";
  return 0;
}

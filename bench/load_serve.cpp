//===- bench/load_serve.cpp - Snapshot-serving throughput bench -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the four Table 2 benchmarks as a job stream against two
/// serving strategies and reports throughput and latency percentiles:
///
///   threaded — the in-process pool (driver/Serve.h): each distinct
///     (program, config) is compiled once into an immutable
///     CompiledSnapshot and shared by all worker threads; a job is one
///     CompiledSnapshot::run().
///   fork — the PR 5 resilience baseline (micad's default isolation):
///     every job forks a worker that runs the whole pipeline
///     (parse -> profile -> optimize -> measured run) in its own process.
///
/// Every threaded job's RunStats are checked bit-identical against a
/// single-threaded reference run of the same (program, config) — the
/// snapshot immutability contract makes concurrency invisible to the
/// counters.  Results go to stdout and BENCH_load_serve.json, with the
/// process counter registry (serve.*, snapshot.*, interp.*, ...)
/// embedded.
///
/// Environment: SELSPEC_LOAD_THREADS (default 8), SELSPEC_LOAD_JOBS
/// (threaded job count, default 64), SELSPEC_LOAD_FORK_JOBS (fork
/// baseline job count, default 16 — it pays a full compile per job).
///
/// With --chaos the bench becomes the overload-resilience SLO harness
/// (DESIGN.md section 13): a deliberately overloaded job storm against a
/// small admission-controlled pool, with poison jobs (tiny modeled-byte
/// budgets sharing one source key, so the crash quarantine engages), a
/// mid-storm armed-failpoint window (SELSPEC_FAILPOINTS, validated up
/// front, default interp.frame-acquire=fail), and a low-rate cooldown
/// that must walk the brown-out ladder back to normal.  It asserts the
/// serving SLO invariants — the server survives, every job gets exactly
/// one definite outcome (ok/trap/shed/quarantined), completion p99 stays
/// under a calibrated bound, and the ladder both engages and recovers —
/// and writes chaos_summary.json for CI.  SELSPEC_LOAD_CHAOS_JOBS sizes
/// the storm (default 160).
///
/// With --adaptive the fork baseline is replaced by the online
/// respecialization warm-up curve: every program starts on a cold CHA
/// incumbent, live arcs drive a Selective respecialization, the
/// candidate canaries and promotes, and jobs/sec is reported before
/// (cold) and after (warm) the first promotion next to the static
/// threaded baseline, plus the promotion swap-pause p99 from the
/// controllers' own lock-hold measurements.  SELSPEC_LOAD_ADAPTIVE_COLD
/// / _WARM size the two phases.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "driver/Adaptive.h"
#include "driver/Overload.h"
#include "driver/Quarantine.h"
#include "driver/Serve.h"
#include "driver/Snapshot.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace selspec;
using namespace selspec::bench;

namespace {

uint64_t envOr(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return static_cast<uint64_t>(std::strtoull(V, nullptr, 10));
}

bool statsEqual(const RunStats &A, const RunStats &B) {
  return A.DynamicDispatches == B.DynamicDispatches &&
         A.VersionSelects == B.VersionSelects &&
         A.StaticCalls == B.StaticCalls && A.InlinePrims == B.InlinePrims &&
         A.PredictedHits == B.PredictedHits &&
         A.PredictedMisses == B.PredictedMisses &&
         A.FeedbackHits == B.FeedbackHits &&
         A.FeedbackMisses == B.FeedbackMisses &&
         A.ClosuresCreated == B.ClosuresCreated &&
         A.ClosureCalls == B.ClosureCalls &&
         A.Allocations == B.Allocations &&
         A.MethodInvocations == B.MethodInvocations &&
         A.NodesEvaluated == B.NodesEvaluated &&
         A.PeakDepth == B.PeakDepth && A.Cycles == B.Cycles &&
         A.NodeMix == B.NodeMix;
}

struct Percentiles {
  double P50Us = 0, P95Us = 0, P99Us = 0;
};

Percentiles percentiles(std::vector<uint64_t> LatenciesNs) {
  Percentiles P;
  if (LatenciesNs.empty())
    return P;
  std::sort(LatenciesNs.begin(), LatenciesNs.end());
  auto At = [&](double Q) {
    size_t I = static_cast<size_t>(Q * (LatenciesNs.size() - 1) + 0.5);
    return LatenciesNs[I] / 1000.0;
  };
  P.P50Us = At(0.50);
  P.P95Us = At(0.95);
  P.P99Us = At(0.99);
  return P;
}

struct ModeResult {
  uint64_t Jobs = 0;
  uint64_t Failures = 0;
  double WallMs = 0;
  double JobsPerSec = 0;
  /// Mean modeled cycles per successful job (0 when not tracked) — the
  /// paper's own cost metric, which is what specialization improves.
  double MeanCycles = 0;
  Percentiles Lat;
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One prebuilt (program, config) unit of the job mix.
struct ServedProgram {
  const BenchProgram *Program;
  std::shared_ptr<const CompiledSnapshot> Snapshot;
  /// Request-sized workload: a served job is one request, not a full
  /// benchmark run — train on TrainInput, serve TrainInput/20.
  int64_t ServeInput = 1;
  RunStats Reference; ///< single-threaded baseline RunStats
};

int64_t serveInputFor(const BenchProgram &BP) {
  int64_t Div =
      static_cast<int64_t>(envOr("SELSPEC_LOAD_INPUT_DIV", 20));
  int64_t In = BP.TrainInput / (Div > 0 ? Div : 1);
  return In > 0 ? In : 1;
}

/// Builds the four snapshots (Selective config, profile on the train
/// input, bytecode tier) and their single-threaded reference stats.
std::vector<ServedProgram> buildSnapshots() {
  std::vector<ServedProgram> Out;
  for (const BenchProgram &BP : table2Suite()) {
    std::string Err;
    std::shared_ptr<Workbench> WB = Workbench::fromFiles(BP.Files, Err);
    if (!WB) {
      std::cerr << "load_serve: " << BP.Name << ": " << Err << '\n';
      std::exit(1);
    }
    WB->setTier(ExecTier::Bytecode);
    if (!WB->collectProfile(BP.TrainInput, Err)) {
      std::cerr << "load_serve: " << BP.Name << ": profile: " << Err << '\n';
      std::exit(1);
    }
    std::shared_ptr<const CompiledSnapshot> Snap =
        WB->buildSnapshot(Config::Selective, Err, {}, {}, WB);
    if (!Snap) {
      std::cerr << "load_serve: " << BP.Name << ": " << Err << '\n';
      std::exit(1);
    }
    int64_t ServeInput = serveInputFor(BP);
    CompiledSnapshot::JobResult Ref = Snap->run(ServeInput);
    if (!Ref.Ok) {
      std::cerr << "load_serve: " << BP.Name
                << ": reference run failed: " << Ref.Error << '\n';
      std::exit(1);
    }
    Out.push_back(ServedProgram{&BP, std::move(Snap), ServeInput, Ref.R.Run});
  }
  return Out;
}

ModeResult runThreaded(const std::vector<ServedProgram> &Programs,
                       unsigned Threads, uint64_t Jobs, bool &StatsIdentical) {
  ModeResult M;
  std::mutex ResultM;
  std::vector<uint64_t> Latencies;
  uint64_t Mismatches = 0, Failures = 0;

  {
    ServeEngine::Options EO;
    EO.Threads = Threads;
    EO.QueueCapacity = Threads * 4;
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      // Completions are serialized by the engine; the lock guards
      // against the final drain in shutdown().
      std::lock_guard<std::mutex> Lock(ResultM);
      Latencies.push_back(Cmp.QueueNanos + Cmp.RunNanos);
      if (!Cmp.Result.Ok) {
        ++Failures;
        return;
      }
      // The job id is its sequence number; every job's RunStats must be
      // bit-identical to the single-threaded reference of its program —
      // concurrency is invisible to the counters.
      size_t Idx = std::strtoull(Cmp.TheJob.Id.c_str(), nullptr, 10) %
                   Programs.size();
      if (!statsEqual(Cmp.Result.R.Run, Programs[Idx].Reference))
        ++Mismatches;
    });

    uint64_t Start = nowNs();
    for (uint64_t I = 0; I != Jobs; ++I) {
      const ServedProgram &SP = Programs[I % Programs.size()];
      ServeEngine::Job J;
      J.Id = std::to_string(I);
      J.Snapshot = SP.Snapshot;
      J.Input = SP.ServeInput;
      J.CaptureOutput = false;
      J.CollectMetricsDelta = false;
      Engine.submit(std::move(J));
    }
    Engine.shutdown(false);
    M.WallMs = (nowNs() - Start) / 1e6;
  }

  M.Jobs = Jobs;
  M.Failures = Failures;
  M.JobsPerSec = M.WallMs > 0 ? Jobs / (M.WallMs / 1000.0) : 0;
  M.Lat = percentiles(std::move(Latencies));
  StatsIdentical = Mismatches == 0 && Failures == 0;
  return M;
}

/// Forked-worker baseline: every job is a fork that runs the whole
/// pipeline, exactly like micad's default isolation.  Up to \p Width
/// workers run concurrently.
ModeResult runForkBaseline(const std::vector<ServedProgram> &Programs,
                           unsigned Width, uint64_t Jobs) {
  ModeResult M;
  std::vector<uint64_t> Latencies;
  std::map<pid_t, uint64_t> StartedAt;

  auto SpawnJob = [&](uint64_t I) -> pid_t {
    const ServedProgram &SP = Programs[I % Programs.size()];
    const BenchProgram &BP = *SP.Program;
    int64_t ServeInput = SP.ServeInput;
    pid_t Pid = fork();
    if (Pid != 0)
      return Pid;
    // Worker: the full pipeline, one job, _exit (no atexit/stdio replay).
    std::string Err;
    std::unique_ptr<Workbench> WB = Workbench::fromFiles(BP.Files, Err);
    if (!WB)
      _exit(1);
    WB->setTier(ExecTier::Bytecode);
    if (!WB->collectProfile(BP.TrainInput, Err))
      _exit(1);
    std::optional<ConfigResult> R =
        WB->runConfig(Config::Selective, ServeInput, Err);
    _exit(R ? 0 : 1);
  };

  uint64_t Start = nowNs();
  uint64_t Spawned = 0;
  unsigned Live = 0;
  while (Spawned < Jobs || Live > 0) {
    while (Spawned < Jobs && Live < Width) {
      pid_t Pid = SpawnJob(Spawned);
      if (Pid < 0) {
        std::cerr << "load_serve: fork failed: " << std::strerror(errno)
                  << '\n';
        std::exit(1);
      }
      StartedAt[Pid] = nowNs();
      ++Spawned;
      ++Live;
    }
    int Status = 0;
    pid_t Got = wait(&Status);
    if (Got < 0)
      continue;
    auto It = StartedAt.find(Got);
    if (It == StartedAt.end())
      continue;
    Latencies.push_back(nowNs() - It->second);
    StartedAt.erase(It);
    --Live;
    if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
      ++M.Failures;
  }
  M.WallMs = (nowNs() - Start) / 1e6;
  M.Jobs = Jobs;
  M.JobsPerSec = M.WallMs > 0 ? Jobs / (M.WallMs / 1000.0) : 0;
  M.Lat = percentiles(std::move(Latencies));
  return M;
}

//===----------------------------------------------------------------------===//
// Adaptive mode (--adaptive): the online respecialization warm-up curve.
//
// Each program starts cold — a CHA incumbent built with no profile, the
// state a fresh micad --adaptive server is in.  Serving merges live arcs,
// a respecialization builds a Selective candidate from them, the
// candidate canaries and promotes, and throughput is measured before
// (cold) and after (warm) the first promotion.  Swap-pause p99 comes from
// the controllers' own promotion-swap lock-hold times.
//===----------------------------------------------------------------------===//

/// One program served through its own AdaptiveController.
struct AdaptiveUnit {
  const BenchProgram *Program;
  int64_t ServeInput = 1;
  std::unique_ptr<AdaptiveController> Ctrl;
};

std::vector<AdaptiveUnit> buildAdaptiveUnits() {
  std::vector<AdaptiveUnit> Out;
  for (const BenchProgram &BP : table2Suite()) {
    std::string Err;
    // Cold incumbent: CHA needs no profile — exactly what micad
    // --adaptive serves before any arcs arrive.
    std::shared_ptr<Workbench> WB = Workbench::fromFiles(BP.Files, Err);
    if (!WB) {
      std::cerr << "load_serve: " << BP.Name << ": " << Err << '\n';
      std::exit(1);
    }
    WB->setTier(ExecTier::Bytecode);
    std::shared_ptr<const CompiledSnapshot> Incumbent =
        WB->buildSnapshot(Config::CHA, Err, {}, {}, WB);
    if (!Incumbent) {
      std::cerr << "load_serve: " << BP.Name << ": " << Err << '\n';
      std::exit(1);
    }

    AdaptiveController::SnapshotBuilder Builder =
        [&BP](const CallGraph &Prof,
              std::string &ErrorOut) -> std::shared_ptr<const CompiledSnapshot> {
      std::shared_ptr<Workbench> BWB = Workbench::fromFiles(BP.Files, ErrorOut);
      if (!BWB)
        return nullptr;
      BWB->setTier(ExecTier::Bytecode);
      BWB->profile().merge(Prof);
      return BWB->buildSnapshot(Config::Selective, ErrorOut, {}, {}, BWB);
    };

    AdaptiveController::Options AO;
    AO.CanaryFraction = 0.5;
    AO.CanaryJobs = 8;
    AO.MinIncumbentJobs = 4;
    // Steady-state sampling: every 4th job pays the arc-collection hook,
    // the rest run the same atomic-free hot path as static serving.
    AO.SampleEvery = 4;
    AdaptiveUnit U;
    U.Program = &BP;
    U.ServeInput = serveInputFor(BP);
    U.Ctrl = std::make_unique<AdaptiveController>(std::move(Incumbent),
                                                  std::move(Builder), AO);
    Out.push_back(std::move(U));
  }
  return Out;
}

/// Serves \p Jobs round-robin across the units on \p Threads plain
/// threads (admit -> run -> report), returning throughput + latency.
ModeResult serveAdaptivePhase(std::vector<AdaptiveUnit> &Units,
                              unsigned Threads, uint64_t Jobs) {
  ModeResult M;
  std::mutex ResultM;
  std::vector<uint64_t> Latencies;
  uint64_t Failures = 0, OkJobs = 0, OkCycles = 0;
  std::atomic<uint64_t> Next{0};

  uint64_t Start = nowNs();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      for (uint64_t I; (I = Next.fetch_add(1)) < Jobs;) {
        AdaptiveUnit &U = Units[I % Units.size()];
        AdaptiveController::Ticket Tk = U.Ctrl->admit();
        CompiledSnapshot::JobOptions JO;
        JO.CaptureOutput = false;
        JO.CollectArcs = Tk.SampleArcs;
        uint64_t T0 = nowNs();
        CompiledSnapshot::JobResult JR = Tk.Snap->run(U.ServeInput, JO);
        uint64_t Lat = nowNs() - T0;
        U.Ctrl->report(Tk, JR.Ok, JR.Ok ? JR.R.Run.Cycles : 0,
                       JR.Ok && Tk.SampleArcs ? &JR.Arcs : nullptr);
        std::lock_guard<std::mutex> Lock(ResultM);
        Latencies.push_back(Lat);
        if (JR.Ok) {
          ++OkJobs;
          OkCycles += JR.R.Run.Cycles;
        } else {
          ++Failures;
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  M.WallMs = (nowNs() - Start) / 1e6;
  M.Jobs = Jobs;
  M.Failures = Failures;
  M.JobsPerSec = M.WallMs > 0 ? Jobs / (M.WallMs / 1000.0) : 0;
  M.MeanCycles = OkJobs ? double(OkCycles) / OkJobs : 0;
  M.Lat = percentiles(std::move(Latencies));
  return M;
}

/// Static comparator for the adaptive phases: the same plain-thread
/// harness over the prebuilt Selective snapshots, no controller and no
/// arc collection — what the warm steady state is measured against.
ModeResult serveStaticPhase(const std::vector<ServedProgram> &Programs,
                            unsigned Threads, uint64_t Jobs) {
  ModeResult M;
  std::mutex ResultM;
  std::vector<uint64_t> Latencies;
  uint64_t Failures = 0, OkJobs = 0, OkCycles = 0;
  std::atomic<uint64_t> Next{0};

  uint64_t Start = nowNs();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&] {
      for (uint64_t I; (I = Next.fetch_add(1)) < Jobs;) {
        const ServedProgram &SP = Programs[I % Programs.size()];
        CompiledSnapshot::JobOptions JO;
        JO.CaptureOutput = false;
        uint64_t T0 = nowNs();
        CompiledSnapshot::JobResult JR = SP.Snapshot->run(SP.ServeInput, JO);
        uint64_t Lat = nowNs() - T0;
        std::lock_guard<std::mutex> Lock(ResultM);
        Latencies.push_back(Lat);
        if (JR.Ok) {
          ++OkJobs;
          OkCycles += JR.R.Run.Cycles;
        } else {
          ++Failures;
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  M.WallMs = (nowNs() - Start) / 1e6;
  M.Jobs = Jobs;
  M.Failures = Failures;
  M.JobsPerSec = M.WallMs > 0 ? Jobs / (M.WallMs / 1000.0) : 0;
  M.MeanCycles = OkJobs ? double(OkCycles) / OkJobs : 0;
  M.Lat = percentiles(std::move(Latencies));
  return M;
}

//===----------------------------------------------------------------------===//
// Chaos mode (--chaos): the overload-resilience SLO harness.
//
// Phases: clean snapshot builds -> an overloaded storm (admission control
// + poison jobs + a mid-storm armed-failpoint window) -> a low-rate
// cooldown the brown-out ladder must recover through.  Every stream job
// ends in exactly one of: ok, trap, shed (refused at admission),
// quarantined (rerouted out of the shared pool).  The process surviving
// to the summary IS the zero-crash assertion.
//===----------------------------------------------------------------------===//

int runChaos(unsigned Threads) {
  // Validate the failpoint spec up front (unknown sites are a usage
  // error, exit 2 like micac/micad) but arm it only inside the storm
  // window: env-armed pipeline.* points would break the clean builds.
  const char *Env = std::getenv("SELSPEC_FAILPOINTS");
  std::string FpSpec =
      Env && *Env ? Env : std::string("interp.frame-acquire=fail");
  {
    std::string E;
    if (!failpoint::configure(FpSpec, E)) {
      std::cerr << "load_serve: SELSPEC_FAILPOINTS: " << E << '\n';
      return 2;
    }
    failpoint::disarmAll();
  }

  // Bench-sized ladder: quick to engage, and a short cooldown can walk
  // all the way back down.
  {
    overload::Policy OP;
    OP.EngageTicks = 4;
    OP.RecoverTicks = 8;
    overload::setPolicy(OP);
    overload::reset();
  }

  std::vector<ServedProgram> Programs = buildSnapshots();

  const uint64_t StormJobs = envOr("SELSPEC_LOAD_CHAOS_JOBS", 160);
  const uint64_t CooldownJobs = 48;
  const int64_t DeadlineMs = 500;
  const uint64_t PoisonEvery = 6;
  // An "interactive" tenant with a deadline far below the pool's run
  // time: deadline-aware admission must shed these on arrival once the
  // run-time EWMA is published, not let them burn a queue slot and time
  // out.  Offset so it never collides with the poison cadence.
  const int64_t TightDeadlineMs = 2;
  auto IsTight = [&](uint64_t I) { return I % PoisonEvery == 1; };
  // The armed-failpoint window: the middle sixth of the storm.
  const uint64_t WindowBegin = StormJobs / 3;
  const uint64_t WindowEnd = WindowBegin + StormJobs / 6;

  ServeEngine::Options EO;
  EO.Threads = Threads;
  // A small queue against an unthrottled producer is the overload: the
  // storm arrives far faster than the pool drains it.
  EO.QueueCapacity = static_cast<size_t>(Threads) * 2;
  EO.DeadlineAwareAdmission = true;
  EO.MaxSubmitWaitMs = 10;

  CrashQuarantine Quar;
  std::mutex ResultM;
  std::vector<uint64_t> Latencies;
  uint64_t Ok = 0, Trap = 0, Cancelled = 0;
  uint64_t Shed = 0, Quarantined = 0, QuarOk = 0, QuarTrap = 0;
  uint64_t SubmitCalls = 0;
  uint64_t FpHits = 0;
  overload::Level MaxLevel = overload::Level::Normal;

  // Poison jobs share one source key, so their MemoryBudgetExceeded
  // fingerprints repeat and the quarantine threshold (2) trips.
  auto IsPoison = [&](uint64_t I) { return I % PoisonEvery == 3; };
  auto KeyFor = [&](uint64_t I, bool Cooldown) -> std::string {
    if (!Cooldown && IsPoison(I))
      return "poison";
    std::string K = Programs[I % Programs.size()].Program->Name;
    return Cooldown ? K + ":cooldown" : K;
  };

  {
    ServeEngine Engine(EO, [&](ServeEngine::Completion &&Cmp) {
      std::lock_guard<std::mutex> Lock(ResultM);
      if (Cmp.Cancelled) {
        ++Cancelled;
        return;
      }
      Latencies.push_back(Cmp.QueueNanos + Cmp.RunNanos);
      if (Cmp.Result.Ok) {
        ++Ok;
      } else {
        ++Trap;
        // The job id is "<source-key>|<seq>".
        std::string Key = Cmp.TheJob.Id.substr(0, Cmp.TheJob.Id.find('|'));
        if (Quar.recordTrap(Key, Cmp.Result.Trap.Kind))
          std::cerr << "load_serve: quarantined '" << Key << "' ("
                    << trapKindName(Cmp.Result.Trap.Kind) << ")\n";
      }
    });

    // Runs a quarantined job inline, outside the shared pool — degraded
    // latency for the offender, zero exposure for everyone else.
    auto RunQuarantined = [&](const ServedProgram &SP, bool Poison) {
      CompiledSnapshot::JobOptions JO;
      JO.CaptureOutput = false;
      if (Poison)
        JO.Limits.MaxBytes = 4096;
      CancelToken Tok;
      Tok.setDeadline(Deadline::afterMillis(DeadlineMs));
      JO.Cancel = &Tok;
      CompiledSnapshot::JobResult JR = SP.Snapshot->run(SP.ServeInput, JO);
      ++Quarantined;
      if (JR.Ok)
        ++QuarOk;
      else
        ++QuarTrap;
    };

    auto SubmitOne = [&](uint64_t I, bool Cooldown) {
      const ServedProgram &SP = Programs[I % Programs.size()];
      bool Poison = !Cooldown && IsPoison(I);
      std::string Key = KeyFor(I, Cooldown);
      if (Quar.isQuarantined(Key)) {
        RunQuarantined(SP, Poison);
        return;
      }
      ServeEngine::Job J;
      J.Id = Key + "|" + std::to_string(I);
      J.Snapshot = SP.Snapshot;
      J.Input = SP.ServeInput;
      J.DeadlineMs =
          Cooldown ? 5000 : (IsTight(I) ? TightDeadlineMs : DeadlineMs);
      J.CaptureOutput = false;
      J.CollectMetricsDelta = false;
      if (Poison)
        J.Limits.MaxBytes = 4096; // traps MemoryBudgetExceeded immediately
      ++SubmitCalls;
      if (Engine.submit(std::move(J)) == ServeEngine::Admit::Shed)
        ++Shed;
      MaxLevel = std::max(MaxLevel, overload::level());
    };

    bool Armed = false;
    for (uint64_t I = 0; I != StormJobs; ++I) {
      bool InWindow = I >= WindowBegin && I < WindowEnd;
      if (InWindow != Armed) {
        if (InWindow) {
          std::string E;
          failpoint::configure(FpSpec, E); // validated above
        } else {
          // disarmAll clears the hit counter, so bank the window's hits
          // first.
          FpHits += failpoint::totalHits();
          failpoint::disarmAll();
        }
        Armed = InWindow;
      }
      SubmitOne(I, /*Cooldown=*/false);
    }
    FpHits += failpoint::totalHits();
    failpoint::disarmAll();

    // Cooldown: one job at a time against an empty queue — every
    // observation is clear, so the ladder must walk back to normal.
    for (uint64_t I = 0; I != CooldownJobs; ++I) {
      SubmitOne(I, /*Cooldown=*/true);
      while (Engine.queued() + Engine.inFlight() > 0)
        usleep(200);
    }
    Engine.shutdown(false);
  }

  overload::Level FinalLevel = overload::level();
  Percentiles P = percentiles(std::move(Latencies));
  // Bounded p99 for accepted jobs: a run is deadline-bounded, and the
  // queue ahead of a job holds at most Capacity more deadline-bounded
  // runs spread over the pool; everything past that bound is a wedge.
  double BoundMs =
      static_cast<double>(DeadlineMs) *
          (static_cast<double>(EO.QueueCapacity) / Threads + 2.0) +
      1000.0;

  uint64_t Total = StormJobs + CooldownJobs;
  bool Accounted = Ok + Trap + Shed == SubmitCalls && Cancelled == 0 &&
                   SubmitCalls + Quarantined == Total;
  bool P99Ok = P.P99Us / 1000.0 <= BoundMs;
  bool LadderEngaged = MaxLevel > overload::Level::Normal;
  bool LadderRecovered = FinalLevel == overload::Level::Normal;
  bool QuarantineEngaged = Quarantined > 0;
  bool SloOk = Accounted && P99Ok && LadderEngaged && LadderRecovered &&
               QuarantineEngaged;

  std::printf("  storm %llu + cooldown %llu jobs: ok %llu  trap %llu  "
              "shed %llu  quarantined %llu (ok %llu, trap %llu)  "
              "cancelled %llu\n",
              static_cast<unsigned long long>(StormJobs),
              static_cast<unsigned long long>(CooldownJobs),
              static_cast<unsigned long long>(Ok),
              static_cast<unsigned long long>(Trap),
              static_cast<unsigned long long>(Shed),
              static_cast<unsigned long long>(Quarantined),
              static_cast<unsigned long long>(QuarOk),
              static_cast<unsigned long long>(QuarTrap),
              static_cast<unsigned long long>(Cancelled));
  std::printf("  p99 %.1f ms (bound %.1f ms)  failpoint hits %llu  "
              "brown-out max %s, final %s\n",
              P.P99Us / 1000.0, BoundMs,
              static_cast<unsigned long long>(FpHits),
              overload::levelName(MaxLevel), overload::levelName(FinalLevel));
  std::printf("  SLO: accounted %s  p99-bounded %s  ladder-engaged %s  "
              "ladder-recovered %s  quarantine-engaged %s  -> %s\n",
              Accounted ? "yes" : "NO", P99Ok ? "yes" : "NO",
              LadderEngaged ? "yes" : "NO", LadderRecovered ? "yes" : "NO",
              QuarantineEngaged ? "yes" : "NO", SloOk ? "PASS" : "FAIL");

  std::ofstream OS("chaos_summary.json");
  if (!OS) {
    std::cerr << "load_serve: cannot write chaos_summary.json\n";
  } else {
    OS << "{\n  \"bench\": \"load_serve_chaos\",\n  \"git\": \""
       << gitDescribe() << "\",\n  \"threads\": " << Threads
       << ",\n  \"total_jobs\": " << Total
       << ",\n  \"submitted\": " << SubmitCalls << ",\n  \"ok\": " << Ok
       << ",\n  \"trap\": " << Trap << ",\n  \"shed\": " << Shed
       << ",\n  \"quarantined\": " << Quarantined
       << ",\n  \"quarantined_ok\": " << QuarOk
       << ",\n  \"quarantined_trap\": " << QuarTrap
       << ",\n  \"cancelled\": " << Cancelled
       << ",\n  \"p99_ms\": " << P.P99Us / 1000.0
       << ",\n  \"p99_bound_ms\": " << BoundMs
       << ",\n  \"failpoint_hits\": " << FpHits
       << ",\n  \"max_brownout_level\": "
       << static_cast<unsigned>(MaxLevel)
       << ",\n  \"final_brownout_level\": "
       << static_cast<unsigned>(FinalLevel)
       << ",\n  \"server_crashes\": 0,\n  \"slo_ok\": "
       << (SloOk ? "true" : "false")
       << ",\n  \"counters\": " << metrics::toJsonCompact() << "\n}\n";
  }
  return SloOk ? 0 : 1;
}

void printMode(const char *Name, const ModeResult &M) {
  std::printf("  %-9s %5llu jobs  %9.1f ms  %8.1f jobs/s  "
              "p50 %8.0f us  p95 %8.0f us  p99 %8.0f us  failures %llu\n",
              Name, static_cast<unsigned long long>(M.Jobs), M.WallMs,
              M.JobsPerSec, M.Lat.P50Us, M.Lat.P95Us, M.Lat.P99Us,
              static_cast<unsigned long long>(M.Failures));
}

void publishCounters(const char *Mode, const ModeResult &M) {
  // The registry keeps the name pointer, so dynamic names must outlive
  // the process — leaked on purpose, like the counters themselves.
  auto Name = [&](const char *Suffix) {
    return (new std::string(std::string("load_serve.") + Mode + Suffix))
        ->c_str();
  };
  metrics::named(Name(".jobs")).add(M.Jobs);
  metrics::named(Name(".failures")).add(M.Failures);
  metrics::named(Name(".jobs_per_sec_milli"))
      .add(static_cast<uint64_t>(M.JobsPerSec * 1000.0));
  metrics::named(Name(".p50_us")).add(static_cast<uint64_t>(M.Lat.P50Us));
  metrics::named(Name(".p95_us")).add(static_cast<uint64_t>(M.Lat.P95Us));
  metrics::named(Name(".p99_us")).add(static_cast<uint64_t>(M.Lat.P99Us));
}

void modeJson(std::ostream &OS, const char *Name, const ModeResult &M) {
  OS << "    \"" << Name << "\": {\"jobs\": " << M.Jobs
     << ", \"failures\": " << M.Failures << ", \"wall_ms\": " << M.WallMs
     << ", \"jobs_per_sec\": " << M.JobsPerSec
     << ", \"mean_cycles\": " << M.MeanCycles
     << ", \"p50_us\": " << M.Lat.P50Us << ", \"p95_us\": " << M.Lat.P95Us
     << ", \"p99_us\": " << M.Lat.P99Us << "}";
}

} // namespace

int main(int argc, char **argv) {
  bool AdaptiveMode = argc > 1 && std::strcmp(argv[1], "--adaptive") == 0;
  if (argc > 1 && std::strcmp(argv[1], "--chaos") == 0) {
    printHeader("load_serve --chaos — overload-resilience SLO harness",
                "2x-overload storm + poison jobs + armed failpoints");
    return runChaos(
        static_cast<unsigned>(envOr("SELSPEC_LOAD_THREADS", 8)));
  }
  printHeader("load_serve — snapshot serving throughput",
              AdaptiveMode
                  ? "online adaptive respecialization warm-up vs static serving"
                  : "snapshot thread-pool serving vs fork-per-job isolation");

  unsigned Threads = static_cast<unsigned>(envOr("SELSPEC_LOAD_THREADS", 8));
  uint64_t ThreadJobs = envOr("SELSPEC_LOAD_JOBS", 64);
  uint64_t ForkJobs = envOr("SELSPEC_LOAD_FORK_JOBS", 16);

  std::vector<ServedProgram> Programs = buildSnapshots();
  std::printf("%zu snapshots (Selective, bytecode tier), %u threads\n\n",
              Programs.size(), Threads);

  bool StatsIdentical = false;
  ModeResult Threaded =
      runThreaded(Programs, Threads, ThreadJobs, StatsIdentical);
  printMode("threaded", Threaded);

  // The fork baseline pays a full compile per job; in adaptive mode it is
  // skipped — the static threaded run is the baseline that matters there.
  ModeResult Forked;
  double Speedup = 0;
  if (!AdaptiveMode) {
    Forked = runForkBaseline(Programs, Threads, ForkJobs);
    printMode("fork", Forked);
    Speedup =
        Forked.JobsPerSec > 0 ? Threaded.JobsPerSec / Forked.JobsPerSec : 0;
    std::printf("\n  throughput: threaded/fork = %.2fx   per-job RunStats "
                "identical: %s\n",
                Speedup, StatsIdentical ? "yes" : "NO");
  }

  // Adaptive warm-up curve: cold (CHA incumbents, arcs merging) -> first
  // respecialization + canary -> warm (promoted Selective incumbents).
  ModeResult Cold, Warm, StaticCmp;
  double SwapP99Us = 0, WarmupSpeedup = 0, WarmVsStatic = 0;
  uint64_t AdPromotions = 0, AdRollbacks = 0;
  bool AllPromoted = true;
  if (AdaptiveMode) {
    uint64_t ColdJobs = envOr("SELSPEC_LOAD_ADAPTIVE_COLD", 32);
    uint64_t WarmJobs = envOr("SELSPEC_LOAD_ADAPTIVE_WARM", ThreadJobs);
    std::vector<AdaptiveUnit> Units = buildAdaptiveUnits();

    Cold = serveAdaptivePhase(Units, Threads, ColdJobs);
    printMode("cold", Cold);

    // First respecialization: build each unit's Selective candidate from
    // the live arcs, then serve enough traffic to complete every canary.
    for (AdaptiveUnit &U : Units) {
      std::string Err;
      if (!U.Ctrl->respecializeNow(Err))
        std::cerr << "load_serve: " << U.Program->Name
                  << ": respecialize: " << Err << '\n';
    }
    ModeResult Canary = serveAdaptivePhase(
        Units, Threads, Units.size() * 3 * 8 /* CanaryJobs / fraction */);
    printMode("canary", Canary);

    std::vector<uint64_t> Swaps;
    for (AdaptiveUnit &U : Units) {
      U.Ctrl->waitForDecision(0, 2000);
      AdPromotions += U.Ctrl->promotions();
      AdRollbacks += U.Ctrl->rollbacks();
      if (U.Ctrl->promotions() == 0) {
        AllPromoted = false;
        std::cerr << "load_serve: " << U.Program->Name
                  << ": candidate did not promote\n";
      }
      std::vector<uint64_t> S = U.Ctrl->swapLatenciesNs();
      Swaps.insert(Swaps.end(), S.begin(), S.end());
    }
    SwapP99Us = percentiles(std::move(Swaps)).P99Us;

    Warm = serveAdaptivePhase(Units, Threads, WarmJobs);
    printMode("warm", Warm);
    StaticCmp = serveStaticPhase(Programs, Threads, WarmJobs);
    printMode("static", StaticCmp);

    WarmupSpeedup = Cold.JobsPerSec > 0 ? Warm.JobsPerSec / Cold.JobsPerSec : 0;
    WarmVsStatic =
        StaticCmp.JobsPerSec > 0 ? Warm.JobsPerSec / StaticCmp.JobsPerSec : 0;
    double CycleSpeedup =
        Warm.MeanCycles > 0 ? Cold.MeanCycles / Warm.MeanCycles : 0;
    std::printf("\n  warm-up: warm/cold = %.2fx jobs/s, %.2fx modeled cycles"
                "   warm/static = %.2fx   promotions %llu  rollbacks %llu"
                "  swap-pause p99 %.1f us\n",
                WarmupSpeedup, CycleSpeedup, WarmVsStatic,
                static_cast<unsigned long long>(AdPromotions),
                static_cast<unsigned long long>(AdRollbacks), SwapP99Us);

    publishCounters("adaptive_cold", Cold);
    publishCounters("adaptive_warm", Warm);
    metrics::named("load_serve.adaptive_swap_p99_ns")
        .add(static_cast<uint64_t>(SwapP99Us * 1000.0));
  }

  publishCounters("threaded", Threaded);
  if (!AdaptiveMode) {
    publishCounters("fork", Forked);
    metrics::named("load_serve.speedup_milli")
        .add(static_cast<uint64_t>(Speedup * 1000.0));
  }

  std::ofstream OS("BENCH_load_serve.json");
  if (!OS) {
    std::cerr << "load_serve: cannot write BENCH_load_serve.json\n";
  } else {
    OS << "{\n  \"bench\": \"load_serve\",\n  \"git\": \"" << gitDescribe()
       << "\",\n  \"tier\": \"bytecode\",\n  \"threads\": " << Threads
       << ",\n  \"modes\": {\n";
    modeJson(OS, "threaded", Threaded);
    if (!AdaptiveMode) {
      OS << ",\n";
      modeJson(OS, "fork", Forked);
    }
    OS << "\n  },\n";
    if (AdaptiveMode) {
      OS << "  \"adaptive\": {\n";
      modeJson(OS, "cold", Cold);
      OS << ",\n";
      modeJson(OS, "warm", Warm);
      OS << ",\n";
      modeJson(OS, "static", StaticCmp);
      OS << ",\n    \"warmup_speedup\": " << WarmupSpeedup
         << ",\n    \"warmup_cycle_speedup\": "
         << (Warm.MeanCycles > 0 ? Cold.MeanCycles / Warm.MeanCycles : 0)
         << ",\n    \"warm_vs_static\": " << WarmVsStatic
         << ",\n    \"swap_pause_p99_us\": " << SwapP99Us
         << ",\n    \"promotions\": " << AdPromotions
         << ",\n    \"rollbacks\": " << AdRollbacks << "\n  },\n";
    } else {
      OS << "  \"speedup_jobs_per_sec\": " << Speedup << ",\n";
    }
    OS << "  \"stats_identical\": " << (StatsIdentical ? "true" : "false")
       << ",\n  \"counters\": " << metrics::toJsonCompact() << "\n}\n";
  }

  if (!StatsIdentical) {
    std::cerr << "load_serve: per-job RunStats diverged from the "
                 "single-threaded reference\n";
    return 1;
  }
  if (AdaptiveMode && !AllPromoted)
    return 1;
  return 0;
}

//===- bench/stats_specializations.cpp - Section 3.2 statistics ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.2 reports: "we have observed an average of 1.9
/// specializations per method receiving any specializations, with a
/// maximum of 8 specializations for one method" and never the exponential
/// blow-up the combination rule allows in principle.  This bench prints
/// the same statistics for the selective plans of the whole suite.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "specialize/SelectiveSpecializer.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Specializations per method (selective plans)",
              "Section 3.2");

  TextTable T({"Program", "Methods specialized", "Versions added",
               "Avg per specialized", "Max for one method",
               "Cascaded", "Blow-up guard hits"});

  double TotalAdded = 0, TotalMethods = 0;
  unsigned GlobalMax = 0;
  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    if (!W->collectProfile(P.TrainInput, Err)) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }

    SelectiveSpecializer S(W->program(), W->applicableClasses(),
                           W->passThrough(), W->profile());
    S.run();
    const SelectiveSpecializer::Stats &St = S.stats();
    double Avg = St.MethodsSpecialized == 0
                     ? 0.0
                     : (static_cast<double>(St.VersionsAdded) +
                        St.MethodsSpecialized) /
                           St.MethodsSpecialized;
    T.addRow({P.Name, TextTable::count(St.MethodsSpecialized),
              TextTable::count(St.VersionsAdded), TextTable::ratio(Avg),
              TextTable::count(St.MaxVersionsOfAMethod),
              TextTable::count(St.CascadedSpecializations),
              TextTable::count(St.BlowupGuardHits)});
    TotalAdded += St.VersionsAdded + St.MethodsSpecialized;
    TotalMethods += St.MethodsSpecialized;
    GlobalMax = std::max(GlobalMax, St.MaxVersionsOfAMethod);
  }
  T.print(std::cout);
  std::cout << "\nSuite-wide: avg "
            << TextTable::ratio(TotalMethods ? TotalAdded / TotalMethods
                                             : 0.0)
            << " versions per specialized method, max " << GlobalMax
            << " (paper: avg 1.9, max 8; no exponential blow-up).\n";
  return 0;
}

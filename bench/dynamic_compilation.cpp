//===- bench/dynamic_compilation.cpp - Section 3.7.3 adaptivity ------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7.3: in a Self-style dynamic-compilation environment,
/// unoptimized code tracks call-site targets and counts, and the hot part
/// of the call graph is (re)built "as necessary to make specialization
/// decisions during the recompilation process."
///
/// This bench simulates that environment at request granularity: a
/// sequence of requests (main() invocations) starts on the unoptimized
/// Base program with profiling counters; after every request the
/// accumulated call graph drives a selective recompilation, and the next
/// request runs on the new code.  Printed per request: the dispatch count
/// of that request, compiled routine count so far, and the profile size —
/// showing the dispatch rate converging to the ahead-of-time Selective
/// level within a few requests.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Dynamic-compilation simulation", "Section 3.7.3");

  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }

    // The ahead-of-time reference: profile on train, measure on test.
    std::unique_ptr<Workbench> Ref = Workbench::fromFiles(P.Files, Err);
    if (!Ref->collectProfile(P.TrainInput, Err)) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    std::optional<ConfigResult> AheadOfTime =
        Ref->runConfig(Config::Selective, P.TestInput, Err);
    if (!AheadOfTime) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }

    TextTable T({"Request", "Dispatches", "Routines", "Profile arcs"});
    const int Requests = 6;
    for (int R = 0; R != Requests; ++R) {
      // Recompile with whatever profile has accumulated so far (empty on
      // the first request: plain CHA-less Base... we model the Self-91
      // unoptimized tier as Base, and the optimizing recompile as
      // Selective once arcs exist).
      Config C = W->hasProfile() ? Config::Selective : Config::Base;
      std::unique_ptr<CompiledProgram> CP = W->compileOnly(C);
      RunOptions Opts;
      Opts.Profile = &W->profile(); // counters stay on, as in Self
      Interpreter I(*CP, Opts);
      if (!I.callMain(P.TestInput)) {
        std::cerr << "error: " << I.errorMessage() << '\n';
        return 1;
      }
      T.addRow({TextTable::count(static_cast<uint64_t>(R + 1)),
                TextTable::count(I.stats().totalDispatches()),
                TextTable::count(CP->numCompiledRoutines()),
                TextTable::count(W->profile().numArcs())});
    }
    std::cout << P.Name << " (ahead-of-time Selective reference: "
              << TextTable::count(AheadOfTime->Run.totalDispatches())
              << " dispatches, "
              << TextTable::count(AheadOfTime->CompiledRoutines)
              << " routines)\n";
    T.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Request 1 runs unoptimized (profiling); from request 2 on "
               "the accumulated call\ngraph drives selective recompiles "
               "and the dispatch rate drops to the\nahead-of-time level — "
               "the Section 3.7.3 adaptation loop.\n";
  return 0;
}

//===- bench/micro_dispatch.cpp - Section 3.5 dispatch mechanisms ----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the runtime lookup mechanisms the
/// paper discusses in Section 3.5: per-site polymorphic inline caches,
/// the global memo table, full most-specific-applicable lookup, and
/// version selection among specialized method versions.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "bytecode/BytecodeCompiler.h"
#include "bytecode/BytecodeInterpreter.h"
#include "runtime/DispatchTable.h"
#include "runtime/Dispatcher.h"

#include <benchmark/benchmark.h>

using namespace selspec;
using namespace selspec::bench;

namespace {

/// A program with a wide multi-method to stress lookup: 8 shape classes,
/// `hit` with cases over pairs.
std::unique_ptr<Workbench> makeLookupProgram() {
  std::string Src = "class Shape;\n";
  for (int I = 0; I != 8; ++I)
    Src += "class S" + std::to_string(I) + " isa Shape;\n";
  Src += "method hit(a@Shape, b@Shape) { 0; }\n";
  for (int I = 0; I != 8; ++I)
    Src += "method hit(a@S" + std::to_string(I) +
           ", b@Shape) { " + std::to_string(I + 1) + "; }\n";
  for (int I = 0; I != 4; ++I)
    Src += "method hit(a@S" + std::to_string(I) + ", b@S" +
           std::to_string(I) + ") { " + std::to_string(100 + I) + "; }\n";
  Src += "method main(n@Int) { n; }\n";

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources({Src}, Err, /*WithStdlib=*/false);
  if (!W) {
    fprintf(stderr, "%s\n", Err.c_str());
    exit(1);
  }
  return W;
}

GenericId hitGeneric(const Program &P) {
  return P.lookupGeneric(P.Syms.find("hit"), 2);
}

ClassId shapeClass(const Program &P, int I) {
  return P.Classes.lookup(P.Syms.find("S" + std::to_string(I)));
}

void BM_PicHitMonomorphic(benchmark::State &State) {
  std::unique_ptr<Workbench> W = makeLookupProgram();
  const Program &P = W->program();
  Dispatcher D(P);
  GenericId G = hitGeneric(P);
  std::vector<ClassId> Args = {shapeClass(P, 0), shapeClass(P, 1)};
  CallSiteId Site(0);
  D.lookup(G, Args, Site); // warm the PIC
  for (auto _ : State)
    benchmark::DoNotOptimize(D.lookup(G, Args, Site));
}
BENCHMARK(BM_PicHitMonomorphic);

void BM_PicHitPolymorphicDegree4(benchmark::State &State) {
  std::unique_ptr<Workbench> W = makeLookupProgram();
  const Program &P = W->program();
  Dispatcher D(P);
  GenericId G = hitGeneric(P);
  CallSiteId Site(1);
  std::vector<std::vector<ClassId>> Cases;
  for (int I = 0; I != 4; ++I) {
    Cases.push_back({shapeClass(P, I), shapeClass(P, (I + 1) % 4)});
    D.lookup(G, Cases.back(), Site); // warm
  }
  size_t K = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(D.lookup(G, Cases[K & 3], Site));
    ++K;
  }
}
BENCHMARK(BM_PicHitPolymorphicDegree4);

void BM_GlobalMemoHit(benchmark::State &State) {
  std::unique_ptr<Workbench> W = makeLookupProgram();
  const Program &P = W->program();
  Dispatcher D(P);
  GenericId G = hitGeneric(P);
  std::vector<ClassId> Args = {shapeClass(P, 2), shapeClass(P, 3)};
  D.lookup(G, Args, CallSiteId()); // warm the memo, bypassing PICs
  for (auto _ : State)
    benchmark::DoNotOptimize(D.lookup(G, Args, CallSiteId()));
}
BENCHMARK(BM_GlobalMemoHit);

void BM_FullLookup(benchmark::State &State) {
  std::unique_ptr<Workbench> W = makeLookupProgram();
  const Program &P = W->program();
  GenericId G = hitGeneric(P);
  std::vector<ClassId> Args = {shapeClass(P, 5), shapeClass(P, 6)};
  for (auto _ : State)
    benchmark::DoNotOptimize(P.dispatch(G, Args));
}
BENCHMARK(BM_FullLookup);

void BM_CompressedTableLookup(benchmark::State &State) {
  std::unique_ptr<Workbench> W = makeLookupProgram();
  const Program &P = W->program();
  GenericId G = hitGeneric(P);
  DispatchTable T(P, G);
  std::vector<ClassId> Args = {shapeClass(P, 5), shapeClass(P, 6)};
  for (auto _ : State)
    benchmark::DoNotOptimize(T.lookup(Args));
}
BENCHMARK(BM_CompressedTableLookup);

void BM_VersionSelection(benchmark::State &State) {
  // Customized plan: many versions per method; select by receiver class.
  std::unique_ptr<Workbench> W = makeLookupProgram();
  Program &P = W->program();
  std::unique_ptr<CompiledProgram> CP = W->compileOnly(Config::Cust);
  GenericId G = hitGeneric(P);
  MethodId General = P.generic(G).Methods[0];
  std::vector<ClassId> Args = {shapeClass(P, 6), shapeClass(P, 7)};
  for (auto _ : State)
    benchmark::DoNotOptimize(CP->selectVersion(General, Args));
}
BENCHMARK(BM_VersionSelection);

void BM_EndToEndDispatchRichards(benchmark::State &State) {
  // Wall-clock of a full Base vs Selective richards run (dispatch-heavy).
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles({"richards.mica"}, Err);
  if (!W) {
    fprintf(stderr, "%s\n", Err.c_str());
    exit(1);
  }
  if (!W->collectProfile(50, Err)) {
    fprintf(stderr, "%s\n", Err.c_str());
    exit(1);
  }
  Config C = State.range(0) == 0 ? Config::Base : Config::Selective;
  std::unique_ptr<CompiledProgram> CP = W->compileOnly(C);
  for (auto _ : State) {
    Interpreter I(*CP);
    if (!I.callMain(50)) {
      fprintf(stderr, "%s\n", I.errorMessage().c_str());
      exit(1);
    }
    benchmark::DoNotOptimize(I.stats().Cycles);
  }
}
BENCHMARK(BM_EndToEndDispatchRichards)->Arg(0)->Arg(1);

void BM_EndToEndDispatchRichardsBytecode(benchmark::State &State) {
  // Same run on the bytecode tier: per-site inline caches replace the
  // dispatcher's PIC probe on the hot path, so the Base-vs-Selective gap
  // here isolates what specialization still buys once sends are cached.
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles({"richards.mica"}, Err);
  if (!W) {
    fprintf(stderr, "%s\n", Err.c_str());
    exit(1);
  }
  if (!W->collectProfile(50, Err)) {
    fprintf(stderr, "%s\n", Err.c_str());
    exit(1);
  }
  Config C = State.range(0) == 0 ? Config::Base : Config::Selective;
  std::unique_ptr<CompiledProgram> CP = W->compileOnly(C);
  BcModule Mod = compileToBytecode(*CP);
  if (!Mod.Ok) {
    fprintf(stderr, "bytecode lowering failed: %s\n", Mod.Error.c_str());
    exit(1);
  }
  for (auto _ : State) {
    BytecodeInterpreter I(*CP, Mod);
    if (!I.callMain(50)) {
      fprintf(stderr, "%s\n", I.errorMessage().c_str());
      exit(1);
    }
    benchmark::DoNotOptimize(I.stats().Cycles);
  }
}
BENCHMARK(BM_EndToEndDispatchRichardsBytecode)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();

//===- bench/ablation_base_opts.cpp - Table 1 Base composition -------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1's Base configuration bundles intraprocedural class analysis,
/// inlining, class prediction, constant folding and dead-code
/// elimination.  This ablation turns each off in isolation and reports
/// the cycle cost, showing what each contributes to the baseline the
/// other configurations are normalized against.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Composition of the Base configuration", "Table 1");

  struct Variant {
    const char *Name;
    void (*Tweak)(OptimizerOptions &);
  };
  const Variant Variants[] = {
      {"full Base", [](OptimizerOptions &) {}},
      {"- inlining",
       [](OptimizerOptions &O) {
         O.EnableInlining = false;
         O.EnableClosureInlining = false;
       }},
      {"- class prediction",
       [](OptimizerOptions &O) { O.EnableClassPrediction = false; }},
      {"- folding & DCE",
       [](OptimizerOptions &O) {
         O.EnableConstantFolding = false;
         O.EnableDeadCodeElimination = false;
       }},
      {"bare (none of the above)",
       [](OptimizerOptions &O) {
         O.EnableInlining = false;
         O.EnableClosureInlining = false;
         O.EnableClassPrediction = false;
         O.EnableConstantFolding = false;
         O.EnableDeadCodeElimination = false;
       }},
  };

  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }

    TextTable T({"Variant", "Dispatches", "Cycles", "Slowdown vs Base"});
    uint64_t FullCycles = 0;
    for (const Variant &V : Variants) {
      OptimizerOptions Opt;
      V.Tweak(Opt);
      std::optional<ConfigResult> R =
          W->runConfig(Config::Base, P.TestInput, Err, {}, Opt);
      if (!R) {
        std::cerr << "error: " << V.Name << ": " << Err << '\n';
        return 1;
      }
      if (FullCycles == 0)
        FullCycles = R->Run.Cycles;
      T.addRow({V.Name, TextTable::count(R->Run.totalDispatches()),
                TextTable::count(R->Run.Cycles),
                TextTable::ratio(static_cast<double>(R->Run.Cycles) /
                                 static_cast<double>(FullCycles))});
    }
    std::cout << P.Name << '\n';
    T.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Class prediction carries most of Base's baseline quality "
               "(without it, every\narithmetic message is a full "
               "dispatch), mirroring the Self-91 experience the\npaper's "
               "Base is modeled on.\n";
  return 0;
}

//===- bench/interaction_techniques.cpp - Section 6 interactions -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6: "specialization is only one technique ... profile-guided
/// class prediction [Hölzle & Ungar 94], interprocedural class inference
/// ... it seems clear that the performance benefits of combining all of
/// these techniques will not be strictly additive."  This bench measures
/// that interaction: CHA and Selective, each alone and combined with the
/// two implemented extensions — type feedback (inline-cache guards for
/// profiled dominant callees) and interprocedural return-class analysis —
/// and reports how much each adds on top of the other.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Interaction of optimization techniques", "Section 6");

  struct Variant {
    const char *Name;
    Config C;
    bool Feedback;
    bool ReturnClasses;
  };
  const Variant Variants[] = {
      {"CHA", Config::CHA, false, false},
      {"CHA+feedback", Config::CHA, true, false},
      {"CHA+retcls", Config::CHA, false, true},
      {"Selective", Config::Selective, false, false},
      {"Selective+feedback", Config::Selective, true, false},
      {"Selective+retcls", Config::Selective, false, true},
      {"Selective+both", Config::Selective, true, true},
  };

  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    if (!W->collectProfile(P.TrainInput, Err)) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    std::optional<ConfigResult> Base =
        W->runConfig(Config::Base, P.TestInput, Err);
    if (!Base) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    double BaseDispatch =
        static_cast<double>(Base->Run.totalDispatches());
    double BaseCycles = static_cast<double>(Base->Run.Cycles);

    TextTable T({"Variant", "Dispatches vs Base", "Feedback hits",
                 "Speedup vs Base"});
    for (const Variant &V : Variants) {
      OptimizerOptions Opt;
      Opt.EnableTypeFeedback = V.Feedback;
      Opt.UseReturnClasses = V.ReturnClasses;
      std::optional<ConfigResult> R =
          W->runConfig(V.C, P.TestInput, Err, {}, Opt);
      if (!R) {
        std::cerr << "error: " << V.Name << ": " << Err << '\n';
        return 1;
      }
      T.addRow({V.Name,
                TextTable::ratio(R->Run.totalDispatches() / BaseDispatch),
                TextTable::count(R->Run.FeedbackHits),
                TextTable::ratio(BaseCycles /
                                 static_cast<double>(R->Run.Cycles))});
    }
    std::cout << P.Name << " (Base: "
              << TextTable::count(Base->Run.totalDispatches())
              << " dispatches)\n";
    T.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "The techniques overlap (not strictly additive): feedback "
               "guards the same hot\npolymorphic sites specialization "
               "removes, so its marginal benefit shrinks when\nadded on "
               "top of Selective — the paper's Section 6 expectation.\n";
  return 0;
}

//===- bench/BenchCommon.cpp - Shared harness for figure benches -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace selspec;
using namespace selspec::bench;

const std::vector<BenchProgram> &selspec::bench::table2Suite() {
  static const std::vector<BenchProgram> Suite = {
      {"richards", "Operating system task queue simulation",
       {"richards.mica"}, 300, 420},
      {"instsched", "A MIPS assembly code instruction scheduler",
       {"instsched.mica"}, 12, 16},
      {"typechecker", "Typechecker for the minilang language",
       {"minilang.mica", "typechecker.mica"}, 300, 380},
      {"compiler", "Optimizing compiler + VM for the minilang language",
       {"minilang.mica", "compiler.mica"}, 220, 280},
  };
  return Suite;
}

namespace {

/// Refusal helper: a trapped phase aborts the bench with the trap's kind
/// name and faulting location, exiting with the trap's own code so a
/// harness can tell a deadline (23) from a dispatch failure (11) from a
/// plain diagnostic (1).
[[noreturn]] void refuse(const std::string &Name, const char *What,
                         const RuntimeTrap &T, const std::string &Err) {
  std::cerr << "error: " << What << ' ' << Name << ": " << Err << '\n';
  if (T.isTrap()) {
    std::cerr << "error: trap " << trapKindName(T.Kind);
    if (T.Loc.isValid())
      std::cerr << " at line " << T.Loc.Line << ", col " << T.Loc.Col;
    std::cerr << " (exit " << trapExitCode(T.Kind) << ")\n";
  }
  std::exit(T.isTrap() ? trapExitCode(T.Kind) : 1);
}

/// The "tier" recorded by an existing BENCH_*.json, empty when the file
/// does not exist or predates the field.
std::string previousJsonTier(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return "";
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  const std::string Text = Buf.str();
  const std::string Key = "\"tier\": \"";
  size_t At = Text.find(Key);
  if (At == std::string::npos)
    return "";
  At += Key.size();
  size_t End = Text.find('"', At);
  return End == std::string::npos ? "" : Text.substr(At, End - At);
}

} // namespace

std::string selspec::bench::gitDescribe() {
  std::string Out;
  if (FILE *P = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char Buf[128];
    while (fgets(Buf, sizeof(Buf), P))
      Out += Buf;
    pclose(P);
  }
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  // Keep the JSON well-formed whatever the tree state produced.
  for (char &Ch : Out)
    if (Ch == '"' || Ch == '\\' || static_cast<unsigned char>(Ch) < 0x20)
      Ch = '?';
  return Out.empty() ? "unknown" : Out;
}

SuiteResult selspec::bench::runSuiteProgram(const BenchProgram &Program,
                                            const std::vector<Config> &Configs,
                                            const SelectiveOptions &Sel) {
  // SELSPEC_BENCH_DEADLINE_MS bounds each bench program end to end —
  // profiling plus every measured config — so a wedged bench in CI dies
  // with a structured exit 23 instead of a job timeout.
  CancelToken Tok;
  const CancelToken *Cancel = nullptr;
  if (const char *Env = std::getenv("SELSPEC_BENCH_DEADLINE_MS")) {
    int64_t Ms = std::atoll(Env);
    if (Ms > 0) {
      Tok.setDeadline(Deadline::afterMillis(Ms));
      Cancel = &Tok;
    }
  }

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles(Program.Files, Err, /*WithStdlib=*/true, Cancel);
  if (!W) {
    std::cerr << "error: cannot load " << Program.Name << ": " << Err
              << '\n';
    std::exit(Cancel && Cancel->stopRequested()
                  ? trapExitCode(TrapKind::DeadlineExceeded)
                  : 1);
  }
  if (!W->collectProfile(Program.TrainInput, Err))
    refuse(Program.Name, "profiling", W->lastTrap(), Err);

  SuiteResult R;
  R.Program = Program;
  R.SourceLines = W->sourceLines();
  std::string BaseOutput;
  for (Config C : Configs) {
    std::optional<ConfigResult> CR =
        W->runConfig(C, Program.TestInput, Err, Sel);
    if (!CR)
      refuse(Program.Name, "running", W->lastTrap(),
             std::string("under ") + configName(C) + ": " + Err);
    // Cross-check: every configuration must compute the same answer.
    if (BaseOutput.empty())
      BaseOutput = CR->Output;
    else if (CR->Output != BaseOutput) {
      std::cerr << "error: " << Program.Name << " under " << configName(C)
                << " produced different output\n";
      std::exit(1);
    }
    R.ByConfig.push_back(std::move(*CR));
  }
  writeBenchJson(R);
  return R;
}

bool selspec::bench::writeBenchJson(const SuiteResult &R) {
  // A trapped run produced no meaningful counters; emitting its JSON would
  // silently poison downstream comparisons.  runSuiteProgram exits on any
  // failed run, so a trap here means a caller built the SuiteResult by
  // hand and skipped that check — fail loudly instead of writing the file.
  for (const ConfigResult &CR : R.ByConfig) {
    if (CR.Trap != TrapKind::None) {
      std::cerr << "error: " << R.Program.Name << " under "
                << configName(CR.Configuration) << " trapped ("
                << trapKindName(CR.Trap)
                << "); refusing to write BENCH_" << R.Program.Name
                << ".json (exit " << trapExitCode(CR.Trap) << ")\n";
      std::exit(trapExitCode(CR.Trap));
    }
  }
  std::string Path = "BENCH_" + R.Program.Name + ".json";
  // All configs in one SuiteResult ran on the Workbench's single tier.
  const char *Tier =
      tierName(R.ByConfig.empty() ? defaultTier() : R.ByConfig.front().Tier);
  std::string PrevTier = previousJsonTier(Path);
  if (!PrevTier.empty() && PrevTier != Tier)
    std::cerr << "warning: " << Path << " was measured on the '" << PrevTier
              << "' tier; overwriting with '" << Tier
              << "' tier results — numbers are not comparable across"
                 " tiers\n";
  std::ofstream OS(Path);
  if (!OS) {
    std::cerr << "warning: cannot write " << Path << '\n';
    return false;
  }
  OS << "{\n"
     << "  \"benchmark\": \"" << R.Program.Name << "\",\n"
     << "  \"tier\": \"" << Tier << "\",\n"
     << "  \"git_describe\": \"" << gitDescribe() << "\",\n"
     << "  \"train_input\": " << R.Program.TrainInput << ",\n"
     << "  \"test_input\": " << R.Program.TestInput << ",\n"
     << "  \"source_lines\": " << R.SourceLines << ",\n"
     << "  \"configs\": [\n";
  for (size_t I = 0; I != R.ByConfig.size(); ++I) {
    const ConfigResult &CR = R.ByConfig[I];
    const RunStats &S = CR.Run;
    OS << "    {\n"
       << "      \"config\": \"" << configName(CR.Configuration) << "\",\n"
       << "      \"tier\": \"" << tierName(CR.Tier) << "\",\n"
       << "      \"dispatches\": " << S.totalDispatches() << ",\n"
       << "      \"dynamic_dispatches\": " << S.DynamicDispatches << ",\n"
       << "      \"version_selects\": " << S.VersionSelects << ",\n"
       << "      \"static_calls\": " << S.StaticCalls << ",\n"
       << "      \"inline_prims\": " << S.InlinePrims << ",\n"
       << "      \"method_invocations\": " << S.MethodInvocations << ",\n"
       << "      \"closure_calls\": " << S.ClosureCalls << ",\n"
       << "      \"nodes_evaluated\": " << S.NodesEvaluated << ",\n"
       << "      \"peak_depth\": " << S.PeakDepth << ",\n"
       << "      \"cycles\": " << S.Cycles << ",\n"
       << "      \"wall_ns\": " << CR.WallNanos << ",\n"
       << "      \"compiled_routines\": " << CR.CompiledRoutines << ",\n"
       << "      \"invoked_routines\": " << CR.InvokedRoutines << ",\n"
       << "      \"code_size\": " << CR.CodeSize << "\n"
       << "    }" << (I + 1 == R.ByConfig.size() ? "" : ",") << "\n";
  }
  // The process-wide counter registry (dispatcher.*, interp.*, ...),
  // accumulated across every config's runs above.
  OS << "  ],\n  \"counters\": " << metrics::toJson("  ") << "\n}\n";
  return true;
}

SuiteResult selspec::bench::runSuiteProgram(const BenchProgram &Program,
                                            const SelectiveOptions &Sel) {
  return runSuiteProgram(
      Program,
      std::vector<Config>(AllConfigs.begin(), AllConfigs.end()), Sel);
}

void selspec::bench::printHeader(const std::string &Title,
                                 const std::string &PaperRef) {
  std::cout << "== " << Title << " ==\n"
            << "Reproduces: " << PaperRef
            << " (Dean, Chambers & Grove, PLDI 1995)\n\n";
}

//===- bench/BenchCommon.cpp - Shared harness for figure benches -----------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdlib>
#include <iostream>

using namespace selspec;
using namespace selspec::bench;

const std::vector<BenchProgram> &selspec::bench::table2Suite() {
  static const std::vector<BenchProgram> Suite = {
      {"richards", "Operating system task queue simulation",
       {"richards.mica"}, 300, 420},
      {"instsched", "A MIPS assembly code instruction scheduler",
       {"instsched.mica"}, 12, 16},
      {"typechecker", "Typechecker for the minilang language",
       {"minilang.mica", "typechecker.mica"}, 300, 380},
      {"compiler", "Optimizing compiler + VM for the minilang language",
       {"minilang.mica", "compiler.mica"}, 220, 280},
  };
  return Suite;
}

SuiteResult selspec::bench::runSuiteProgram(const BenchProgram &Program,
                                            const std::vector<Config> &Configs,
                                            const SelectiveOptions &Sel) {
  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromFiles(Program.Files, Err);
  if (!W) {
    std::cerr << "error: cannot load " << Program.Name << ": " << Err
              << '\n';
    std::exit(1);
  }
  if (!W->collectProfile(Program.TrainInput, Err)) {
    std::cerr << "error: profiling " << Program.Name << ": " << Err << '\n';
    std::exit(1);
  }

  SuiteResult R;
  R.Program = Program;
  R.SourceLines = W->sourceLines();
  std::string BaseOutput;
  for (Config C : Configs) {
    std::optional<ConfigResult> CR =
        W->runConfig(C, Program.TestInput, Err, Sel);
    if (!CR) {
      std::cerr << "error: running " << Program.Name << " under "
                << configName(C) << ": " << Err << '\n';
      std::exit(1);
    }
    // Cross-check: every configuration must compute the same answer.
    if (BaseOutput.empty())
      BaseOutput = CR->Output;
    else if (CR->Output != BaseOutput) {
      std::cerr << "error: " << Program.Name << " under " << configName(C)
                << " produced different output\n";
      std::exit(1);
    }
    R.ByConfig.push_back(std::move(*CR));
  }
  return R;
}

SuiteResult selspec::bench::runSuiteProgram(const BenchProgram &Program,
                                            const SelectiveOptions &Sel) {
  return runSuiteProgram(
      Program,
      std::vector<Config>(AllConfigs.begin(), AllConfigs.end()), Sel);
}

void selspec::bench::printHeader(const std::string &Title,
                                 const std::string &PaperRef) {
  std::cout << "== " << Title << " ==\n"
            << "Reproduces: " << PaperRef
            << " (Dean, Chambers & Grove, PLDI 1995)\n\n";
}

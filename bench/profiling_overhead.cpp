//===- bench/profiling_overhead.cpp - Section 3.7.2 overhead ---------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7.2: gathering call-site-specific PIC profiles costs 15-50%
/// run time in the paper's Cecil system.  This bench measures the
/// wall-clock time of Base-configuration runs with and without profile
/// collection enabled (median of several repetitions), plus the volume of
/// profile data gathered and the stability of the hot-arc set across the
/// train and test inputs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "interp/Interpreter.h"

#include <algorithm>
#include <chrono>
#include <iostream>

using namespace selspec;
using namespace selspec::bench;

namespace {

double medianRunSeconds(Workbench &W, int64_t Input, bool Profile,
                        int Reps) {
  std::vector<double> Times;
  for (int R = 0; R != Reps; ++R) {
    std::unique_ptr<CompiledProgram> CP = W.compileOnly(Config::Base);
    CallGraph CG;
    RunOptions Opts;
    if (Profile)
      Opts.Profile = &CG;
    Interpreter I(*CP, Opts);
    auto T0 = std::chrono::steady_clock::now();
    if (!I.callMain(Input)) {
      std::cerr << "run failed: " << I.errorMessage() << '\n';
      std::exit(1);
    }
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

} // namespace

int main() {
  printHeader("Profiling run-time overhead", "Section 3.7.2");

  TextTable T({"Program", "Plain (ms)", "Profiled (ms)", "Overhead",
               "Arcs", "Hot-arc overlap train/test"});
  for (const BenchProgram &P : table2Suite()) {
    std::string Err;
    std::unique_ptr<Workbench> W = Workbench::fromFiles(P.Files, Err);
    if (!W) {
      std::cerr << "error: " << Err << '\n';
      return 1;
    }
    double Plain = medianRunSeconds(*W, P.TrainInput, false, 5);
    double Profiled = medianRunSeconds(*W, P.TrainInput, true, 5);

    // Stability of the arc structure across inputs (Section 3.7.2 /
    // [Garrett et al. 94]): compare the arc sets of train vs test runs.
    CallGraph Train, Test;
    {
      std::unique_ptr<CompiledProgram> CP = W->compileOnly(Config::Base);
      RunOptions Opts;
      Opts.Profile = &Train;
      Interpreter I(*CP, Opts);
      I.callMain(P.TrainInput);
    }
    {
      std::unique_ptr<CompiledProgram> CP = W->compileOnly(Config::Base);
      RunOptions Opts;
      Opts.Profile = &Test;
      Interpreter I(*CP, Opts);
      I.callMain(P.TestInput);
    }
    unsigned Shared = 0;
    for (const Arc &A : Train.arcs())
      for (const Arc &B : Test.arcs())
        if (A.Site == B.Site && A.Callee == B.Callee) {
          ++Shared;
          break;
        }
    double Overlap =
        Train.numArcs() == 0
            ? 0.0
            : 100.0 * Shared / static_cast<double>(Train.numArcs());

    T.addRow({P.Name, TextTable::ratio(Plain * 1000.0),
              TextTable::ratio(Profiled * 1000.0),
              TextTable::percentDelta(Profiled, Plain),
              TextTable::count(Train.numArcs()),
              TextTable::ratio(Overlap) + "%"});
  }
  T.print(std::cout);
  std::cout << "\nPaper: PIC-based profiling costs 15-50% at run time; "
               "profiles are stable\nacross inputs, so they are gathered "
               "rarely and reused (persistent profile DB).\n";
  return 0;
}

//===- bench/fig6_code_space.cpp - Figure 6 reproduction -------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6: compiled-routine counts per configuration, both for a
/// statically-compiled system (every generated version counts) and for a
/// dynamic-compilation system (only versions actually invoked at run time
/// count, as in Self), plus estimated code-size units.  Normalized to the
/// number of source methods, as in the paper's bars.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Figure 6: number of compiled routines", "Figure 6");

  std::vector<SuiteResult> Results;
  for (const BenchProgram &P : table2Suite())
    Results.push_back(runSuiteProgram(P));

  TextTable Static({"Program", "Source methods", "Base", "Cust", "Cust-MM",
                    "Selective", "Selective/Base"});
  TextTable Dynamic({"Program", "Base", "Cust", "Cust-MM", "Selective"});
  TextTable Size({"Program", "Base", "Cust", "Cust-MM", "CHA",
                  "Selective"});

  for (const SuiteResult &R : Results) {
    const ConfigResult &Base = R.ByConfig[0];
    const ConfigResult &Cust = R.ByConfig[1];
    const ConfigResult &CustMM = R.ByConfig[2];
    const ConfigResult &CHA = R.ByConfig[3];
    const ConfigResult &Sel = R.ByConfig[4];

    Static.addRow(
        {R.Program.Name, TextTable::count(Base.CompiledRoutines),
         TextTable::count(Base.CompiledRoutines),
         TextTable::count(Cust.CompiledRoutines),
         TextTable::count(CustMM.CompiledRoutines),
         TextTable::count(Sel.CompiledRoutines),
         TextTable::ratio(static_cast<double>(Sel.CompiledRoutines) /
                          static_cast<double>(Base.CompiledRoutines))});
    Dynamic.addRow({R.Program.Name, TextTable::count(Base.InvokedRoutines),
                    TextTable::count(Cust.InvokedRoutines),
                    TextTable::count(CustMM.InvokedRoutines),
                    TextTable::count(Sel.InvokedRoutines)});
    Size.addRow({R.Program.Name, TextTable::count(Base.CodeSize),
                 TextTable::count(Cust.CodeSize),
                 TextTable::count(CustMM.CodeSize),
                 TextTable::count(CHA.CodeSize),
                 TextTable::count(Sel.CodeSize)});
  }

  std::cout << "Routines compiled, statically-compiled system (all "
               "generated versions)\n";
  Static.print(std::cout);
  std::cout << "\nRoutines compiled, dynamic-compilation system (invoked "
               "versions only)\n";
  Dynamic.print(std::cout);
  std::cout << "\nEstimated compiled code size (instruction units)\n";
  Size.print(std::cout);
  std::cout << "\nPaper's shape: receiver customization multiplies "
               "compiled routines by 3-4x;\nselective specialization adds "
               "only 4-10% over Base while winning on speed.\n";
  return 0;
}

//===- bench/fig5_performance.cpp - Figure 5 reproduction ------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: for each benchmark and each Table 1 configuration, (a) the
/// number of dynamic dispatches normalized to Base (lower is better) and
/// (b) execution speed normalized to Base (higher is better).  Profiles
/// come from the train input; measurements use a different test input.
/// The footer computes the share of Selective's dispatch win that CHA
/// alone accounts for (the paper reports roughly a third... to half).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace selspec;
using namespace selspec::bench;

int main() {
  printHeader("Figure 5: dynamic dispatches and execution speed",
              "Figure 5 and Table 1");

  std::cout << "Table 1 configurations:\n"
            << "  Base      intraprocedural class analysis, inlining, class\n"
            << "            prediction, closure elimination; one version per method\n"
            << "  Cust      Base + customization on the receiver class (Self-style)\n"
            << "  Cust-MM   Base + customization on all dispatched arguments\n"
            << "  CHA       Base + whole-program class hierarchy analysis\n"
            << "  Selective CHA + profile-guided selective specialization\n\n";

  std::vector<SuiteResult> Results;
  for (const BenchProgram &P : table2Suite())
    Results.push_back(runSuiteProgram(P));

  // --- dispatches, normalized to Base (lower is better) ---
  TextTable Dispatch({"Program", "Base", "Cust", "Cust-MM", "CHA",
                      "Selective", "(Base count)"});
  for (const SuiteResult &R : Results) {
    double Base = static_cast<double>(R.ByConfig[0].Run.totalDispatches());
    std::vector<std::string> Row = {R.Program.Name};
    for (const ConfigResult &CR : R.ByConfig)
      Row.push_back(TextTable::ratio(
          static_cast<double>(CR.Run.totalDispatches()) / Base));
    Row.push_back(TextTable::count(R.ByConfig[0].Run.totalDispatches()));
    Dispatch.addRow(std::move(Row));
  }
  std::cout << "Number of dynamic dispatches (normalized to Base; lower "
               "is better)\n";
  Dispatch.print(std::cout);

  // --- execution speed, normalized to Base (higher is better) ---
  TextTable Speed({"Program", "Base", "Cust", "Cust-MM", "CHA",
                   "Selective", "(Base cycles)"});
  for (const SuiteResult &R : Results) {
    double Base = static_cast<double>(R.ByConfig[0].Run.Cycles);
    std::vector<std::string> Row = {R.Program.Name};
    for (const ConfigResult &CR : R.ByConfig)
      Row.push_back(
          TextTable::ratio(Base / static_cast<double>(CR.Run.Cycles)));
    Row.push_back(TextTable::count(R.ByConfig[0].Run.Cycles));
    Speed.addRow(std::move(Row));
  }
  std::cout << "\nExecution speed (normalized to Base; higher is better)\n";
  Speed.print(std::cout);

  // --- the CHA share of Selective's benefit ---
  std::cout << "\nShare of Selective's dispatch elimination attributable "
               "to CHA alone:\n";
  for (const SuiteResult &R : Results) {
    uint64_t Base = R.ByConfig[0].Run.totalDispatches();
    uint64_t CHA = R.ByConfig[3].Run.totalDispatches();
    uint64_t Sel = R.ByConfig[4].Run.totalDispatches();
    double Share = Base == Sel
                       ? 0.0
                       : static_cast<double>(Base - CHA) /
                             static_cast<double>(Base - Sel);
    std::cout << "  " << R.Program.Name << ": "
              << TextTable::ratio(Share * 100.0) << "%\n";
  }
  std::cout << "\nPaper's shape: Cust removes 35-61% of dispatches, "
               "Cust-MM 41-62%, Selective 54-66%\n"
               "(best of all); speedups order Base < CHA/Cust < Cust-MM "
               "< Selective.\n";
  return 0;
}

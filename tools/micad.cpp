//===- tools/micad.cpp - Supervised Mica batch server -----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running batch front end for the pipeline, built for resilience
/// experiments: jobs arrive as newline-delimited requests, each job runs
/// in a forked worker process under a watchdog, and the parent emits one
/// JSON result line per job no matter how the worker dies.
///
///   micad [jobs-file] [options]          (reads stdin when no file given)
///
/// Job request lines are whitespace-separated key=value pairs; blank lines
/// and '#' comments are skipped:
///
///   id=r1 src=richards.mica config=cha input=3
///   id=r2 src=richards.mica config=base input=2000 deadline-ms=100 retries=0
///   id=r3 src=richards.mica config=cha input=3 retries=1
///         inject=interp.frame-acquire=crash   (one line in practice)
///
/// Keys: src (required), id, config (base|cust|cust-mm|cha|selective),
/// input, profile-input, deadline-ms, retries, inject (SELSPEC_FAILPOINTS
/// syntax, armed in the worker on the FIRST attempt only — injected faults
/// model transient failures), max-depth, max-nodes, max-objects.
///
/// Supervision: the worker runs the whole pipeline in-process with the
/// job's resource guards and a cooperative deadline token; the parent
/// polls waitpid(WNOHANG) and SIGKILLs a worker that overruns its
/// deadline by --grace-ms (the cooperative path normally exits 23 first).
/// Crashed (signalled) and timed-out workers are retried with exponential
/// backoff plus deterministic jitter until the job's retry budget is
/// spent; deterministic failures (traps, diagnostics) are never retried.
///
/// Each job produces one JSON line on stdout:
///
///   {"id":"r2","src":"richards.mica","config":"base","outcome":"timeout",
///    "attempts":1,"retries_used":0,"exit":23,"wall_ms":104}
///
/// outcome is one of: "ok", "retried(n)" (ok after n retries),
/// "trap:<kind>", "timeout", "gave-up".  Signalled workers also report
/// "signal":N.  Workers that exited (rather than being killed) also
/// report "metrics":{...} — the worker's own counter registry
/// (dispatcher.*, interp.*, ...), shipped back over a pipe.  micad exits
/// 0 once every request produced a result line (outcomes carry the
/// per-job verdicts) and 2 on usage/input errors, so supervising it
/// composes.
///
/// Options:
///   --default-deadline-ms N   deadline for jobs that set none   [10000]
///   --default-retries N       retry budget default              [1]
///   --grace-ms N              SIGKILL lag past the deadline     [500]
///   --max-line-bytes N        reject longer request lines       [65536]
///   --metrics-json FILE       write the server's supervision tallies
///                             (micad.jobs, micad.retries, ...) on exit
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/RuntimeTrap.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"

#include <cerrno>
#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace selspec;

namespace {

struct ServerOptions {
  std::string JobsPath; // empty = stdin
  int64_t DefaultDeadlineMs = 10000;
  int DefaultRetries = 1;
  int64_t GraceMs = 500;
  size_t MaxLineBytes = 65536;
  std::string MetricsJsonPath;
};

// Supervision tallies, exported by --metrics-json.  Parent-side only:
// each worker's own counters travel back over the metrics pipe and are
// embedded per job, never merged into the parent registry.
metrics::Counter CtrJobs("micad.jobs");
metrics::Counter CtrOk("micad.ok");
metrics::Counter CtrRetried("micad.retried");
metrics::Counter CtrRetries("micad.retries");
metrics::Counter CtrTimeout("micad.timeout");
metrics::Counter CtrTrap("micad.trap");
metrics::Counter CtrGaveUp("micad.gave_up");
metrics::Counter CtrRejected("micad.rejected");

struct Job {
  std::string Id;
  std::string Src;
  Config Configuration = Config::Selective;
  int64_t Input = 10;
  int64_t ProfileInput = -1;
  int64_t DeadlineMs = -1; // -1 = server default
  int Retries = -1;        // -1 = server default
  std::string Inject;
  ResourceLimits Limits;
};

[[noreturn]] void usage(const char *Message = nullptr) {
  if (Message)
    std::cerr << "micad: " << Message << "\n\n";
  std::cerr << "usage: micad [jobs-file] [--default-deadline-ms N]\n"
               "             [--default-retries N] [--grace-ms N]\n"
               "             [--max-line-bytes N] [--metrics-json FILE]\n"
               "jobs are key=value lines: src= id= config= input= "
               "profile-input=\n"
               "  deadline-ms= retries= inject= max-depth= max-nodes= "
               "max-objects=\n";
  std::exit(2);
}

template <typename T> bool parseInt(const std::string &Text, T &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Out);
  return Ec == std::errc() && Ptr == Text.data() + Text.size();
}

bool parseConfig(const std::string &Name, Config &Out) {
  if (Name == "base") Out = Config::Base;
  else if (Name == "cust") Out = Config::Cust;
  else if (Name == "cust-mm" || Name == "custmm") Out = Config::CustMM;
  else if (Name == "cha") Out = Config::CHA;
  else if (Name == "selective") Out = Config::Selective;
  else return false;
  return true;
}

/// Parses one request line.  False + message when the line is malformed —
/// the job is then reported as rejected without forking anything.
bool parseJob(const std::string &Line, Job &J, std::string &ErrorOut) {
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok) {
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      ErrorOut = "malformed token '" + Tok + "' (want key=value)";
      return false;
    }
    std::string Key = Tok.substr(0, Eq);
    std::string Val = Tok.substr(Eq + 1);
    bool Ok = true;
    if (Key == "id") J.Id = Val;
    else if (Key == "src") J.Src = Val;
    else if (Key == "config") Ok = parseConfig(Val, J.Configuration);
    else if (Key == "input") Ok = parseInt(Val, J.Input);
    else if (Key == "profile-input") Ok = parseInt(Val, J.ProfileInput);
    else if (Key == "deadline-ms") Ok = parseInt(Val, J.DeadlineMs);
    else if (Key == "retries") Ok = parseInt(Val, J.Retries);
    else if (Key == "inject") J.Inject = Val; // validated in the worker
    else if (Key == "max-depth") Ok = parseInt(Val, J.Limits.MaxDepth);
    else if (Key == "max-nodes") Ok = parseInt(Val, J.Limits.MaxNodes);
    else if (Key == "max-objects") Ok = parseInt(Val, J.Limits.MaxObjects);
    else {
      ErrorOut = "unknown key '" + Key + "'";
      return false;
    }
    if (!Ok) {
      ErrorOut = "bad value for '" + Key + "': '" + Val + "'";
      return false;
    }
  }
  if (J.Src.empty()) {
    ErrorOut = "missing src=";
    return false;
  }
  if (J.ProfileInput < 0)
    J.ProfileInput = J.Input;
  return true;
}

/// Runs one attempt of \p J to completion inside the forked worker.
/// Returns the process exit code: 0 ok, trap codes for runtime failures
/// (23 = cooperative deadline), 1 diagnostics, 2 bad inject spec.
int runJobInWorker(const Job &J, bool ArmInject) {
  if (ArmInject && !J.Inject.empty()) {
    std::string E;
    if (!failpoint::configure(J.Inject, E)) {
      std::cerr << "micad worker: " << E << '\n';
      return 2;
    }
  }
  CancelToken Tok;
  if (J.DeadlineMs > 0)
    Tok.setDeadline(Deadline::afterMillis(J.DeadlineMs));

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles({J.Src}, Err, /*WithStdlib=*/true, &Tok);
  if (!W) {
    std::cerr << "micad worker: " << Err << '\n';
    return Tok.stopRequested() ? trapExitCode(TrapKind::DeadlineExceeded) : 1;
  }
  W->setLimits(J.Limits);

  if (J.Configuration == Config::Selective &&
      !W->collectProfile(J.ProfileInput, Err)) {
    std::cerr << "micad worker: " << Err << '\n';
    return W->lastTrap().isTrap() ? trapExitCode(W->lastTrap().Kind) : 1;
  }
  std::optional<ConfigResult> R =
      W->runConfig(J.Configuration, J.Input, Err);
  std::string DiagText = W->diagnostics().toString();
  if (!DiagText.empty())
    std::cerr << DiagText;
  if (!R) {
    std::cerr << "micad worker: " << Err << '\n';
    return W->lastTrap().isTrap() ? trapExitCode(W->lastTrap().Kind) : 1;
  }
  return 0;
}

/// How one worker attempt ended, as observed by the supervisor.
struct AttemptResult {
  enum Kind { Ok, Trap, SoftTimeout, HardTimeout, Crash, Rejected } K = Ok;
  int ExitCode = 0;
  int Signal = 0;
  TrapKind TheTrap = TrapKind::None;
  int64_t WallMs = 0;
  /// The worker's own counter registry as a compact JSON object, read off
  /// the metrics pipe; empty when the worker died before writing it (or
  /// wrote a torn payload).
  std::string MetricsJson;
  bool retryable() const {
    return K == SoftTimeout || K == HardTimeout || K == Crash;
  }
};

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Forks a worker for one attempt and supervises it: polls
/// waitpid(WNOHANG) and SIGKILLs the child once it overruns the job
/// deadline by the grace period.
AttemptResult superviseAttempt(const Job &J, bool ArmInject,
                               const ServerOptions &O) {
  AttemptResult R;
  std::cout.flush();
  std::cerr.flush();
  // The worker reports its counter registry back over a pipe; the whole
  // payload is a few hundred bytes, far below the pipe buffer, so the
  // single write before _exit never blocks and the parent can read it
  // after reaping.  A failed pipe() just loses the metrics, not the job.
  int MetricsPipe[2] = {-1, -1};
  if (pipe(MetricsPipe) != 0)
    MetricsPipe[0] = MetricsPipe[1] = -1;
  pid_t Pid = fork();
  if (Pid < 0) {
    std::cerr << "micad: fork failed: " << std::strerror(errno) << '\n';
    if (MetricsPipe[0] >= 0) {
      close(MetricsPipe[0]);
      close(MetricsPipe[1]);
    }
    R.K = AttemptResult::Crash;
    return R;
  }
  if (Pid == 0) {
    if (MetricsPipe[0] >= 0)
      close(MetricsPipe[0]);
    // Zero the inherited registry so the exported metrics are this job's
    // alone, not the parent's supervision tallies.
    metrics::resetAll();
    int Code = runJobInWorker(J, ArmInject);
    std::cout.flush();
    std::cerr.flush();
    if (MetricsPipe[1] >= 0) {
      std::string M = metrics::toJsonCompact();
      ssize_t Unused = write(MetricsPipe[1], M.data(), M.size());
      (void)Unused;
      close(MetricsPipe[1]);
    }
    // _exit: the worker shares the parent's stdio/atexit state and must
    // not run global destructors or flush inherited buffers twice.
    _exit(Code);
  }
  if (MetricsPipe[1] >= 0)
    close(MetricsPipe[1]);
  // Drains the worker's metrics payload once it exited; validated as a
  // brace-delimited object so a worker killed mid-write embeds nothing.
  auto collectWorkerMetrics = [&] {
    if (MetricsPipe[0] < 0)
      return;
    std::string Buf;
    char Chunk[4096];
    ssize_t N;
    while ((N = read(MetricsPipe[0], Chunk, sizeof(Chunk))) > 0 &&
           Buf.size() < 65536)
      Buf.append(Chunk, static_cast<size_t>(N));
    close(MetricsPipe[0]);
    MetricsPipe[0] = -1;
    if (Buf.size() >= 2 && Buf.front() == '{' && Buf.back() == '}')
      R.MetricsJson = std::move(Buf);
  };

  int64_t Start = nowMs();
  int64_t KillAfter = J.DeadlineMs > 0 ? J.DeadlineMs + O.GraceMs : -1;
  bool SentKill = false;
  for (;;) {
    int Status = 0;
    pid_t Got = waitpid(Pid, &Status, WNOHANG);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      std::cerr << "micad: waitpid failed: " << std::strerror(errno) << '\n';
      kill(Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      if (MetricsPipe[0] >= 0)
        close(MetricsPipe[0]);
      R.K = AttemptResult::Crash;
      return R;
    }
    if (Got == Pid) {
      R.WallMs = nowMs() - Start;
      collectWorkerMetrics();
      if (WIFSIGNALED(Status)) {
        R.Signal = WTERMSIG(Status);
        R.K = SentKill ? AttemptResult::HardTimeout : AttemptResult::Crash;
        return R;
      }
      R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : 70;
      if (R.ExitCode == 0) {
        R.K = AttemptResult::Ok;
      } else if (R.ExitCode == trapExitCode(TrapKind::DeadlineExceeded)) {
        R.K = AttemptResult::SoftTimeout;
        R.TheTrap = TrapKind::DeadlineExceeded;
      } else if (trapKindForExitCode(R.ExitCode) != TrapKind::None) {
        R.K = AttemptResult::Trap;
        R.TheTrap = trapKindForExitCode(R.ExitCode);
      } else {
        R.K = AttemptResult::Rejected; // diagnostics / bad job, final
      }
      return R;
    }
    if (KillAfter >= 0 && !SentKill && nowMs() - Start >= KillAfter) {
      kill(Pid, SIGKILL);
      SentKill = true;
    }
    usleep(2000);
  }
}

/// Deterministic per-(job, attempt) jitter so reruns back off identically.
int64_t backoffMs(const std::string &Id, int Attempt) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Id)
    H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
  H = (H ^ static_cast<uint64_t>(Attempt)) * 1099511628211ull;
  int64_t Base = 50ll << (Attempt < 6 ? Attempt : 6); // cap the exponent
  return Base + static_cast<int64_t>(H % 64);
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\', Out += C;
    else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else
      Out += C;
  }
  return Out;
}

/// Emits the one JSON result line for a finished job.
void emitResult(const Job &J, const std::string &Outcome, int Attempts,
                const AttemptResult &Last) {
  std::cout << "{\"id\":\"" << jsonEscape(J.Id) << "\",\"src\":\""
            << jsonEscape(J.Src) << "\",\"config\":\""
            << configName(J.Configuration) << "\",\"outcome\":\"" << Outcome
            << "\",\"attempts\":" << Attempts
            << ",\"retries_used\":" << (Attempts > 0 ? Attempts - 1 : 0)
            << ",\"exit\":" << Last.ExitCode;
  if (Last.Signal)
    std::cout << ",\"signal\":" << Last.Signal;
  std::cout << ",\"wall_ms\":" << Last.WallMs;
  // The worker's own counters (dispatcher.*, interp.*, ...), embedded
  // raw: collectWorkerMetrics already validated the payload shape.
  if (!Last.MetricsJson.empty())
    std::cout << ",\"metrics\":" << Last.MetricsJson;
  std::cout << "}" << std::endl;
}

/// Runs one job to a final outcome, retrying transient failures.
void runJob(Job J, const ServerOptions &O, size_t LineNo) {
  if (J.Id.empty())
    J.Id = "line-" + std::to_string(LineNo);
  if (J.DeadlineMs < 0)
    J.DeadlineMs = O.DefaultDeadlineMs;
  if (J.Retries < 0)
    J.Retries = O.DefaultRetries;

  CtrJobs.add();
  AttemptResult Last;
  int Attempts = 0;
  for (;;) {
    ++Attempts;
    // Injected faults model transient failures: armed on the first
    // attempt only, so a retry demonstrates recovery.
    Last = superviseAttempt(J, /*ArmInject=*/Attempts == 1, O);
    if (Last.K == AttemptResult::Ok) {
      CtrOk.add();
      if (Attempts > 1)
        CtrRetried.add();
      CtrRetries.add(static_cast<uint64_t>(Attempts - 1));
      emitResult(J, Attempts == 1
                        ? "ok"
                        : "retried(" + std::to_string(Attempts - 1) + ")",
                 Attempts, Last);
      return;
    }
    if (!Last.retryable() || Attempts > J.Retries)
      break;
    usleep(static_cast<useconds_t>(backoffMs(J.Id, Attempts) * 1000));
  }
  CtrRetries.add(static_cast<uint64_t>(Attempts - 1));

  std::string Outcome;
  switch (Last.K) {
  case AttemptResult::Trap:
    CtrTrap.add();
    Outcome = std::string("trap:") + trapKindName(Last.TheTrap);
    break;
  case AttemptResult::SoftTimeout:
  case AttemptResult::HardTimeout:
    CtrTimeout.add();
    Outcome = "timeout";
    break;
  default:
    CtrGaveUp.add();
    Outcome = "gave-up";
    break;
  }
  emitResult(J, Outcome, Attempts, Last);
}

ServerOptions parseArgs(int Argc, char **Argv) {
  ServerOptions O;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value after " + A).c_str());
      return Argv[++I];
    };
    auto NextInt = [&](const char *Flag) {
      int64_t V = 0;
      if (!parseInt(NextValue(), V) || V < 0)
        usage((std::string("bad value for ") + Flag).c_str());
      return V;
    };
    if (A == "--default-deadline-ms")
      O.DefaultDeadlineMs = NextInt("--default-deadline-ms");
    else if (A == "--default-retries")
      O.DefaultRetries = static_cast<int>(NextInt("--default-retries"));
    else if (A == "--grace-ms")
      O.GraceMs = NextInt("--grace-ms");
    else if (A == "--max-line-bytes")
      O.MaxLineBytes = static_cast<size_t>(NextInt("--max-line-bytes"));
    else if (A == "--metrics-json")
      O.MetricsJsonPath = NextValue();
    else if (!A.empty() && A[0] == '-')
      usage(("unknown option " + A).c_str());
    else if (O.JobsPath.empty())
      O.JobsPath = A;
    else
      usage("more than one jobs file");
  }
  return O;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions O = parseArgs(Argc, Argv);

  // A worker's death must never take the server with it.
  signal(SIGPIPE, SIG_IGN);

  std::ifstream FileIn;
  if (!O.JobsPath.empty()) {
    FileIn.open(O.JobsPath);
    if (!FileIn) {
      std::cerr << "micad: cannot read '" << O.JobsPath << "'\n";
      return 2;
    }
  }
  std::istream &In = O.JobsPath.empty() ? std::cin : FileIn;

  size_t LineNo = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t Start = Line.find_first_not_of(" \t");
    if (Start == std::string::npos || Line[Start] == '#')
      continue;
    Job J;
    std::string Err;
    if (Line.size() > O.MaxLineBytes)
      Err = "request line exceeds --max-line-bytes";
    if (Err.empty() && !parseJob(Line, J, Err))
      Err = "bad request: " + Err;
    if (!Err.empty()) {
      if (J.Id.empty())
        J.Id = "line-" + std::to_string(LineNo);
      std::cerr << "micad: line " << LineNo << ": " << Err << '\n';
      CtrJobs.add();
      CtrRejected.add();
      AttemptResult Rej;
      Rej.K = AttemptResult::Rejected;
      Rej.ExitCode = 2;
      emitResult(J, "gave-up", 0, Rej);
      continue;
    }
    runJob(std::move(J), O, LineNo);
  }
  if (!O.MetricsJsonPath.empty()) {
    std::string Err;
    if (!metrics::writeJsonFile(O.MetricsJsonPath, Err))
      std::cerr << "micad: " << Err << '\n';
  }
  return 0;
}

//===- tools/micad.cpp - Supervised Mica batch server -----------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running batch front end for the pipeline, built for resilience
/// experiments: jobs arrive as newline-delimited requests, each job runs
/// in a forked worker process under a watchdog — or, with --threads, on an
/// in-process thread pool over shared CompiledSnapshots — and the server
/// emits one JSON result line per job no matter how the job dies.
///
///   micad [jobs-file] [options]          (reads stdin when no file given)
///
/// Job request lines are whitespace-separated key=value pairs; blank lines
/// and '#' comments are skipped:
///
///   id=r1 src=richards.mica config=cha input=3
///   id=r2 src=richards.mica config=base input=2000 deadline-ms=100 retries=0
///   id=r3 src=richards.mica config=cha input=3 retries=1
///         inject=interp.frame-acquire=crash   (one line in practice)
///
/// Keys: src (required), id, config (base|cust|cust-mm|cha|selective),
/// input, profile-input, deadline-ms, retries, inject (SELSPEC_FAILPOINTS
/// syntax, armed in the worker on the FIRST attempt only — injected faults
/// model transient failures), max-depth, max-nodes, max-objects,
/// max-bytes (per-job modeled-byte budget; the server default comes from
/// --max-bytes or the SELSPEC_MAX_BYTES environment variable).
///
/// Supervision: the worker runs the whole pipeline in-process with the
/// job's resource guards and a cooperative deadline token; the parent
/// polls waitpid(WNOHANG) and SIGKILLs a worker that overruns its
/// deadline by --grace-ms (the cooperative path normally exits 23 first).
/// Crashed (signalled) and timed-out workers are retried with exponential
/// backoff plus deterministic jitter until the job's retry budget is
/// spent; deterministic failures (traps, diagnostics) are never retried.
///
/// Each job produces one JSON line on stdout:
///
///   {"id":"r2","src":"richards.mica","config":"base","outcome":"timeout",
///    "attempts":1,"retries_used":0,"exit":23,"wall_ms":104}
///
/// outcome is one of: "ok", "retried(n)" (ok after n retries),
/// "trap:<kind>", "timeout", "cancelled" (shutdown drained the job before
/// it ran), "shed" (admission control refused the job under overload; see
/// --shed below), "gave-up".  Signalled workers also report "signal":N.
/// Workers that exited (rather than being killed) also report
/// "metrics":{...} — in fork isolation the worker's own counter registry
/// (dispatcher.*, interp.*, ...) shipped back over a pipe; in thread
/// isolation the job's exact per-counter deltas against the shared
/// registry (they sum to the process-wide totals).  micad exits 0 once
/// every request produced a result line (outcomes carry the per-job
/// verdicts) and 2 on usage/input errors, so supervising it composes.
///
/// Isolation: --isolation=fork (default) is the crash-proof path above.
/// --threads=N (implies --isolation=thread unless overridden) serves jobs
/// from an in-process pool instead: each distinct (src, config, profile)
/// is compiled once into an immutable CompiledSnapshot (driver/Snapshot.h)
/// and shared by every worker thread; per-job deadlines stay cooperative
/// (CancelToken polled at the interpreter's charge cadence) but cover the
/// run only — the compile/profile happens once per snapshot key, outside
/// any single job's deadline (fork isolation times the whole worker,
/// compile included).  Jobs with
/// inject= always take the fork path — failpoints are process-global and
/// must not poison pooled neighbours.  Thread isolation never retries: in
/// one process, failures are deterministic.
///
/// Shutdown: SIGTERM/SIGINT drain gracefully — stop accepting requests,
/// cancel in-flight jobs cooperatively (fork isolation: SIGKILL the
/// worker), report still-queued jobs as "cancelled", flush --metrics-json,
/// exit 0.
///
/// Adaptive serving: --adaptive (implies thread isolation) puts every
/// snapshot behind an AdaptiveController (driver/Adaptive.h): jobs are
/// sampled for live call-graph arcs, a background thread respecializes on
/// a cadence / SIGHUP / arc-weight threshold, and a rebuilt candidate
/// canaries a bounded fraction of jobs before an RCU promotion — or rolls
/// back to the incumbent on any trap/cost regression or injected
/// `adaptive.*` failpoint.  A job that fails with a deadline trap while a
/// swap happened mid-run (or while it was canary traffic) is retried once,
/// synchronously, on the incumbent (micad.adaptive_retries); outcomes then
/// read "retried(1)" exactly like fork-mode recoveries.  SIGHUP requests
/// an immediate respecialization of every controller (observed when the
/// next request line arrives, or by the periodic cadence on a quiet
/// stream).  micad arms SELSPEC_FAILPOINTS at startup, so soaks can arm
/// adaptive failpoints process-wide without per-job inject=.
///
/// Overload resilience (thread isolation; DESIGN.md section 13): --shed
/// turns on deadline-aware admission — a job whose estimated queue wait
/// already exceeds its deadline is refused up front with outcome "shed"
/// instead of timing out after burning a pool slot — and
/// --max-submit-wait-ms bounds how long a full queue backpressures the
/// accept loop before shedding.  Sustained queue/memory pressure also
/// drives a brown-out ladder (driver/Overload.h) that progressively turns
/// off arc collection, then respecialization, then degrades new Selective
/// snapshot builds to CHA, recovering in reverse as pressure clears.  A
/// source whose jobs repeatedly trap on resource guards or injected
/// faults is quarantined (driver/Quarantine.h): its later jobs reroute to
/// the crash-proof fork path (counted by serve.quarantined) so one poison
/// input cannot destabilize the shared pool.
///
/// Options:
///   --default-deadline-ms N   deadline for jobs that set none   [10000]
///   --default-retries N       retry budget default (fork)       [1]
///   --grace-ms N              SIGKILL lag past the deadline     [500]
///   --max-line-bytes N        reject longer request lines       [65536]
///   --max-bytes N             modeled-byte budget default for jobs that
///                             set no max-bytes= (SELSPEC_MAX_BYTES)
///   --threads N               in-process pool width             [1]
///   --isolation thread|fork   job isolation mechanism           [fork]
///   --queue-capacity N        thread-mode submit backpressure   [4*threads]
///   --shed                    deadline-aware admission control  [off]
///   --max-submit-wait-ms N    shed after waiting this long on a full
///                             queue (-1 = block indefinitely)   [-1]
///   --brownout-mem-bytes N    modeled live bytes driving the brown-out
///                             ladder's memory signal            [0=off]
///   --metrics-json FILE       write the server's counter registry on exit
///   --adaptive                online respecialization (thread isolation)
///   --canary-fraction F       candidate's canary traffic share  [0.25]
///   --respecialize-interval MS  periodic respecialization       [1000]
///   --arc-threshold N         new arc weight triggering a build [0=off]
///   --arc-sample N            collect arcs from every Nth job   [1]
///   --profile-db FILE         persist merged live profiles (gen chain)
///
//===----------------------------------------------------------------------===//

#include "driver/Adaptive.h"
#include "driver/Overload.h"
#include "driver/Pipeline.h"
#include "driver/Quarantine.h"
#include "driver/Serve.h"
#include "driver/Snapshot.h"
#include "interp/RuntimeTrap.h"
#include "profile/ProfileDb.h"
#include "support/FailPoint.h"
#include "support/MemoryBudget.h"
#include "support/Metrics.h"

#include <cerrno>
#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace selspec;

namespace {

enum class Isolation { Fork, Thread };

struct ServerOptions {
  std::string JobsPath; // empty = stdin
  int64_t DefaultDeadlineMs = 10000;
  int DefaultRetries = 1;
  int64_t GraceMs = 500;
  size_t MaxLineBytes = 65536;
  uint64_t DefaultMaxBytes = ResourceLimits().MaxBytes;
  unsigned Threads = 1;
  Isolation Iso = Isolation::Fork;
  size_t QueueCapacity = 0; // 0 = 4 * Threads
  bool Shed = false;
  int64_t MaxSubmitWaitMs = -1;
  uint64_t BrownoutMemBytes = 0;
  std::string MetricsJsonPath;
  bool Adaptive = false;
  double CanaryFraction = 0.25;
  int64_t RespecializeIntervalMs = 1000;
  uint64_t ArcThreshold = 0;
  uint64_t ArcSample = 1;
  std::string ProfileDbPath;
};

/// SIGTERM/SIGINT request a graceful drain.  sig_atomic_t flag only in
/// the handler; everything else happens on the main thread afterwards.
volatile sig_atomic_t ShutdownRequested = 0;
/// SIGHUP asks every adaptive controller for an immediate
/// respecialization; the flag is consumed by the accept loop.
volatile sig_atomic_t RespecializeRequested = 0;

void onShutdownSignal(int) { ShutdownRequested = 1; }

void onRespecializeSignal(int) { RespecializeRequested = 1; }

void installRespecializeHandler() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onRespecializeSignal;
  sigemptyset(&SA.sa_mask);
  // SA_RESTART: a SIGHUP must nudge the controllers, not tear the
  // blocking request read (and with it the whole stream) mid-line.
  SA.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &SA, nullptr);
}

void installShutdownHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: a blocking read on the request stream returns EINTR so
  // the accept loop observes the flag instead of wedging on a quiet tty.
  SA.sa_flags = 0;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

// Supervision tallies, exported by --metrics-json.  Parent-side only:
// each worker's own counters travel back over the metrics pipe and are
// embedded per job, never merged into the parent registry.
metrics::Counter CtrJobs("micad.jobs");
metrics::Counter CtrOk("micad.ok");
metrics::Counter CtrRetried("micad.retried");
metrics::Counter CtrRetries("micad.retries");
metrics::Counter CtrTimeout("micad.timeout");
metrics::Counter CtrTrap("micad.trap");
metrics::Counter CtrGaveUp("micad.gave_up");
metrics::Counter CtrRejected("micad.rejected");
metrics::Counter CtrCancelled("micad.cancelled");
metrics::Counter CtrAdaptiveRetries("micad.adaptive_retries");
metrics::Counter CtrShed("micad.shed");
metrics::Counter CtrQuarantined("serve.quarantined");
metrics::Counter CtrDegradedBuilds("serve.degraded_builds");

struct Job {
  std::string Id;
  std::string Src;
  Config Configuration = Config::Selective;
  int64_t Input = 10;
  int64_t ProfileInput = -1;
  int64_t DeadlineMs = -1; // -1 = server default
  int Retries = -1;        // -1 = server default
  int64_t MaxBytes = -1;   // -1 = server default (--max-bytes / env)
  std::string Inject;
  ResourceLimits Limits;
};

[[noreturn]] void usage(const char *Message = nullptr) {
  if (Message)
    std::cerr << "micad: " << Message << "\n\n";
  std::cerr << "usage: micad [jobs-file] [--default-deadline-ms N]\n"
               "             [--default-retries N] [--grace-ms N]\n"
               "             [--max-line-bytes N] [--max-bytes N]\n"
               "             [--metrics-json FILE]\n"
               "             [--threads N] [--isolation thread|fork]\n"
               "             [--queue-capacity N] [--shed]\n"
               "             [--max-submit-wait-ms N] [--brownout-mem-bytes N]\n"
               "             [--adaptive] [--canary-fraction F]\n"
               "             [--respecialize-interval MS] [--arc-threshold N]\n"
               "             [--arc-sample N] [--profile-db FILE]\n"
               "jobs are key=value lines: src= id= config= input= "
               "profile-input=\n"
               "  deadline-ms= retries= inject= max-depth= max-nodes= "
               "max-objects= max-bytes=\n";
  std::exit(2);
}

template <typename T> bool parseInt(const std::string &Text, T &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Out);
  return Ec == std::errc() && Ptr == Text.data() + Text.size();
}

bool parseConfig(const std::string &Name, Config &Out) {
  if (Name == "base") Out = Config::Base;
  else if (Name == "cust") Out = Config::Cust;
  else if (Name == "cust-mm" || Name == "custmm") Out = Config::CustMM;
  else if (Name == "cha") Out = Config::CHA;
  else if (Name == "selective") Out = Config::Selective;
  else return false;
  return true;
}

/// Parses one request line.  False + message when the line is malformed —
/// the job is then reported as rejected without forking anything.
bool parseJob(const std::string &Line, Job &J, std::string &ErrorOut) {
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok) {
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      ErrorOut = "malformed token '" + Tok + "' (want key=value)";
      return false;
    }
    std::string Key = Tok.substr(0, Eq);
    std::string Val = Tok.substr(Eq + 1);
    bool Ok = true;
    if (Key == "id") J.Id = Val;
    else if (Key == "src") J.Src = Val;
    else if (Key == "config") Ok = parseConfig(Val, J.Configuration);
    else if (Key == "input") Ok = parseInt(Val, J.Input);
    else if (Key == "profile-input") Ok = parseInt(Val, J.ProfileInput);
    else if (Key == "deadline-ms") Ok = parseInt(Val, J.DeadlineMs);
    else if (Key == "retries") Ok = parseInt(Val, J.Retries);
    else if (Key == "inject") J.Inject = Val; // validated in the worker
    else if (Key == "max-depth") Ok = parseInt(Val, J.Limits.MaxDepth);
    else if (Key == "max-nodes") Ok = parseInt(Val, J.Limits.MaxNodes);
    else if (Key == "max-objects") Ok = parseInt(Val, J.Limits.MaxObjects);
    else if (Key == "max-bytes") Ok = parseInt(Val, J.MaxBytes) && J.MaxBytes >= 0;
    else {
      ErrorOut = "unknown key '" + Key + "'";
      return false;
    }
    if (!Ok) {
      ErrorOut = "bad value for '" + Key + "': '" + Val + "'";
      return false;
    }
  }
  if (J.Src.empty()) {
    ErrorOut = "missing src=";
    return false;
  }
  if (J.ProfileInput < 0)
    J.ProfileInput = J.Input;
  return true;
}

/// Runs one attempt of \p J to completion inside the forked worker.
/// Returns the process exit code: 0 ok, trap codes for runtime failures
/// (23 = cooperative deadline), 1 diagnostics, 2 bad inject spec.
int runJobInWorker(const Job &J, bool ArmInject) {
  if (ArmInject && !J.Inject.empty()) {
    std::string E;
    if (!failpoint::configure(J.Inject, E)) {
      std::cerr << "micad worker: " << E << '\n';
      return 2;
    }
  }
  CancelToken Tok;
  if (J.DeadlineMs > 0)
    Tok.setDeadline(Deadline::afterMillis(J.DeadlineMs));

  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromFiles({J.Src}, Err, /*WithStdlib=*/true, &Tok);
  if (!W) {
    std::cerr << "micad worker: " << Err << '\n';
    return Tok.stopRequested() ? trapExitCode(TrapKind::DeadlineExceeded) : 1;
  }
  W->setLimits(J.Limits);

  if (J.Configuration == Config::Selective &&
      !W->collectProfile(J.ProfileInput, Err)) {
    std::cerr << "micad worker: " << Err << '\n';
    return W->lastTrap().isTrap() ? trapExitCode(W->lastTrap().Kind) : 1;
  }
  std::optional<ConfigResult> R =
      W->runConfig(J.Configuration, J.Input, Err);
  std::string DiagText = W->diagnostics().toString();
  if (!DiagText.empty())
    std::cerr << DiagText;
  if (!R) {
    std::cerr << "micad worker: " << Err << '\n';
    return W->lastTrap().isTrap() ? trapExitCode(W->lastTrap().Kind) : 1;
  }
  return 0;
}

/// How one worker attempt ended, as observed by the supervisor.
struct AttemptResult {
  enum Kind {
    Ok,
    Trap,
    SoftTimeout,
    HardTimeout,
    Crash,
    Rejected,
    Cancelled ///< server shutdown interrupted the attempt; final.
  } K = Ok;
  int ExitCode = 0;
  int Signal = 0;
  TrapKind TheTrap = TrapKind::None;
  int64_t WallMs = 0;
  /// The worker's own counter registry as a compact JSON object, read off
  /// the metrics pipe; empty when the worker died before writing it (or
  /// wrote a torn payload).
  std::string MetricsJson;
  bool retryable() const {
    return K == SoftTimeout || K == HardTimeout || K == Crash;
  }
};

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Forks a worker for one attempt and supervises it: polls
/// waitpid(WNOHANG) and SIGKILLs the child once it overruns the job
/// deadline by the grace period.
AttemptResult superviseAttempt(const Job &J, bool ArmInject,
                               const ServerOptions &O) {
  AttemptResult R;
  std::cout.flush();
  std::cerr.flush();
  // The worker reports its counter registry back over a pipe; the whole
  // payload is a few hundred bytes, far below the pipe buffer, so the
  // single write before _exit never blocks and the parent can read it
  // after reaping.  A failed pipe() just loses the metrics, not the job.
  int MetricsPipe[2] = {-1, -1};
  if (pipe(MetricsPipe) != 0)
    MetricsPipe[0] = MetricsPipe[1] = -1;
  pid_t Pid = fork();
  if (Pid < 0) {
    std::cerr << "micad: fork failed: " << std::strerror(errno) << '\n';
    if (MetricsPipe[0] >= 0) {
      close(MetricsPipe[0]);
      close(MetricsPipe[1]);
    }
    R.K = AttemptResult::Crash;
    return R;
  }
  if (Pid == 0) {
    if (MetricsPipe[0] >= 0)
      close(MetricsPipe[0]);
    // Zero the inherited registry so the exported metrics are this job's
    // alone, not the parent's supervision tallies.
    metrics::resetAll();
    int Code = runJobInWorker(J, ArmInject);
    std::cout.flush();
    std::cerr.flush();
    if (MetricsPipe[1] >= 0) {
      std::string M = metrics::toJsonCompact();
      ssize_t Unused = write(MetricsPipe[1], M.data(), M.size());
      (void)Unused;
      close(MetricsPipe[1]);
    }
    // _exit: the worker shares the parent's stdio/atexit state and must
    // not run global destructors or flush inherited buffers twice.
    _exit(Code);
  }
  if (MetricsPipe[1] >= 0)
    close(MetricsPipe[1]);
  // Drains the worker's metrics payload once it exited; validated as a
  // brace-delimited object so a worker killed mid-write embeds nothing.
  auto collectWorkerMetrics = [&] {
    if (MetricsPipe[0] < 0)
      return;
    std::string Buf;
    char Chunk[4096];
    ssize_t N;
    while ((N = read(MetricsPipe[0], Chunk, sizeof(Chunk))) > 0 &&
           Buf.size() < 65536)
      Buf.append(Chunk, static_cast<size_t>(N));
    close(MetricsPipe[0]);
    MetricsPipe[0] = -1;
    if (Buf.size() >= 2 && Buf.front() == '{' && Buf.back() == '}')
      R.MetricsJson = std::move(Buf);
  };

  int64_t Start = nowMs();
  int64_t KillAfter = J.DeadlineMs > 0 ? J.DeadlineMs + O.GraceMs : -1;
  bool SentKill = false;
  bool KilledByShutdown = false;
  for (;;) {
    int Status = 0;
    pid_t Got = waitpid(Pid, &Status, WNOHANG);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      std::cerr << "micad: waitpid failed: " << std::strerror(errno) << '\n';
      kill(Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      if (MetricsPipe[0] >= 0)
        close(MetricsPipe[0]);
      R.K = AttemptResult::Crash;
      return R;
    }
    if (Got == Pid) {
      R.WallMs = nowMs() - Start;
      collectWorkerMetrics();
      if (WIFSIGNALED(Status)) {
        R.Signal = WTERMSIG(Status);
        R.K = KilledByShutdown
                  ? AttemptResult::Cancelled
                  : (SentKill ? AttemptResult::HardTimeout
                              : AttemptResult::Crash);
        return R;
      }
      R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : 70;
      if (R.ExitCode == 0) {
        R.K = AttemptResult::Ok;
      } else if (R.ExitCode == trapExitCode(TrapKind::DeadlineExceeded)) {
        R.K = AttemptResult::SoftTimeout;
        R.TheTrap = TrapKind::DeadlineExceeded;
      } else if (trapKindForExitCode(R.ExitCode) != TrapKind::None) {
        R.K = AttemptResult::Trap;
        R.TheTrap = trapKindForExitCode(R.ExitCode);
      } else {
        R.K = AttemptResult::Rejected; // diagnostics / bad job, final
      }
      return R;
    }
    // Graceful drain: an in-flight fork-mode attempt cannot be asked
    // politely (the deadline token lives in the child), so shutdown
    // kills it and reports the job cancelled.
    if (ShutdownRequested && !SentKill) {
      kill(Pid, SIGKILL);
      SentKill = true;
      KilledByShutdown = true;
    }
    if (KillAfter >= 0 && !SentKill && nowMs() - Start >= KillAfter) {
      kill(Pid, SIGKILL);
      SentKill = true;
    }
    usleep(2000);
  }
}

/// Deterministic per-(job, attempt) jitter so reruns back off identically.
int64_t backoffMs(const std::string &Id, int Attempt) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Id)
    H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
  H = (H ^ static_cast<uint64_t>(Attempt)) * 1099511628211ull;
  int64_t Base = 50ll << (Attempt < 6 ? Attempt : 6); // cap the exponent
  return Base + static_cast<int64_t>(H % 64);
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\', Out += C;
    else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else
      Out += C;
  }
  return Out;
}

/// Emits the one JSON result line for a finished job.
void emitResult(const Job &J, const std::string &Outcome, int Attempts,
                const AttemptResult &Last) {
  std::cout << "{\"id\":\"" << jsonEscape(J.Id) << "\",\"src\":\""
            << jsonEscape(J.Src) << "\",\"config\":\""
            << configName(J.Configuration) << "\",\"outcome\":\"" << Outcome
            << "\",\"attempts\":" << Attempts
            << ",\"retries_used\":" << (Attempts > 0 ? Attempts - 1 : 0)
            << ",\"exit\":" << Last.ExitCode;
  if (Last.Signal)
    std::cout << ",\"signal\":" << Last.Signal;
  std::cout << ",\"wall_ms\":" << Last.WallMs;
  // The worker's own counters (dispatcher.*, interp.*, ...), embedded
  // raw: collectWorkerMetrics already validated the payload shape.
  if (!Last.MetricsJson.empty())
    std::cout << ",\"metrics\":" << Last.MetricsJson;
  std::cout << "}" << std::endl;
}

/// Runs one job to a final outcome, retrying transient failures.
void runJob(Job J, const ServerOptions &O, size_t LineNo) {
  if (J.Id.empty())
    J.Id = "line-" + std::to_string(LineNo);
  if (J.DeadlineMs < 0)
    J.DeadlineMs = O.DefaultDeadlineMs;
  if (J.Retries < 0)
    J.Retries = O.DefaultRetries;
  J.Limits.MaxBytes =
      J.MaxBytes >= 0 ? static_cast<uint64_t>(J.MaxBytes) : O.DefaultMaxBytes;

  CtrJobs.add();
  AttemptResult Last;
  int Attempts = 0;
  for (;;) {
    ++Attempts;
    // Injected faults model transient failures: armed on the first
    // attempt only, so a retry demonstrates recovery.
    Last = superviseAttempt(J, /*ArmInject=*/Attempts == 1, O);
    if (Last.K == AttemptResult::Ok) {
      CtrOk.add();
      if (Attempts > 1)
        CtrRetried.add();
      CtrRetries.add(static_cast<uint64_t>(Attempts - 1));
      emitResult(J, Attempts == 1
                        ? "ok"
                        : "retried(" + std::to_string(Attempts - 1) + ")",
                 Attempts, Last);
      return;
    }
    if (!Last.retryable() || Attempts > J.Retries)
      break;
    usleep(static_cast<useconds_t>(backoffMs(J.Id, Attempts) * 1000));
  }
  CtrRetries.add(static_cast<uint64_t>(Attempts - 1));

  std::string Outcome;
  switch (Last.K) {
  case AttemptResult::Trap:
    CtrTrap.add();
    Outcome = std::string("trap:") + trapKindName(Last.TheTrap);
    break;
  case AttemptResult::SoftTimeout:
  case AttemptResult::HardTimeout:
    CtrTimeout.add();
    Outcome = "timeout";
    break;
  case AttemptResult::Cancelled:
    CtrCancelled.add();
    Outcome = "cancelled";
    break;
  default:
    CtrGaveUp.add();
    Outcome = "gave-up";
    break;
  }
  emitResult(J, Outcome, Attempts, Last);
}

/// Renders a job's per-counter metrics delta as a compact JSON object,
/// shape-compatible with the fork path's worker-registry payload.
std::string deltaJson(
    const std::vector<std::pair<std::string, uint64_t>> &Delta) {
  if (Delta.empty())
    return std::string();
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, Value] : Delta) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(Name);
    Out += "\":";
    Out += std::to_string(Value);
  }
  Out += '}';
  return Out;
}

/// In-process serving: a snapshot cache plus a ServeEngine whose
/// completions are rendered as the same JSON result lines the fork path
/// emits.  One instance per server process; dispatch() runs on the accept
/// thread, emit() on worker threads (serialized by the engine).
class ThreadServer {
public:
  explicit ThreadServer(const ServerOptions &O)
      : Opts(O),
        Engine(engineOptions(O),
               [this](ServeEngine::Completion &&Cmp) { emit(std::move(Cmp)); }) {}

  /// Compiles (or reuses) the job's snapshot and enqueues it.  Builds run
  /// on the accept thread: they are cached, and serializing them keeps
  /// the pool for measured runs only.  Adaptive mode routes through the
  /// job's controller instead: the controller decides which snapshot
  /// (incumbent or canarying candidate) serves this job and whether its
  /// arcs feed the live profile.
  void dispatch(Job J, const ServerOptions &O, size_t LineNo) {
    // Crash quarantine: a source whose jobs repeatedly trapped on guards
    // or injected faults reroutes to fork isolation, exactly like inject=
    // jobs — its failure mode is proven, so it pays for its own isolation
    // instead of sharing the pool.  runJob re-applies the defaults.
    if (Quar.isQuarantined(J.Src)) {
      CtrQuarantined.add();
      runJob(std::move(J), O, LineNo);
      return;
    }
    if (J.Id.empty())
      J.Id = "line-" + std::to_string(LineNo);
    if (J.DeadlineMs < 0)
      J.DeadlineMs = O.DefaultDeadlineMs;
    J.Limits.MaxBytes =
        J.MaxBytes >= 0 ? static_cast<uint64_t>(J.MaxBytes) : O.DefaultMaxBytes;
    CtrJobs.add();

    PendingJob PJ;
    std::string Err;
    if (O.Adaptive) {
      PJ.Ctrl = controllerFor(J, Err);
      if (PJ.Ctrl)
        PJ.T = PJ.Ctrl->admit();
    } else {
      PJ.T.Snap = snapshotFor(J, Err);
    }
    if (!PJ.T.Snap) {
      std::cerr << "micad: job '" << J.Id << "': " << Err << '\n';
      CtrGaveUp.add();
      AttemptResult R;
      R.K = AttemptResult::Rejected;
      R.ExitCode = 1;
      emitResult(J, "gave-up", 1, R);
      return;
    }

    ServeEngine::Job SJ;
    SJ.Id = std::to_string(NextTicket);
    SJ.Snapshot = PJ.T.Snap;
    SJ.Input = J.Input;
    SJ.DeadlineMs = J.DeadlineMs;
    SJ.Limits = J.Limits;
    SJ.CollectMetricsDelta = true;
    SJ.CollectArcs = PJ.T.SampleArcs;
    PJ.J = std::move(J);
    uint64_t Ticket = NextTicket++;
    {
      std::lock_guard<std::mutex> Lock(PendingM);
      Pending.emplace(Ticket, std::move(PJ));
    }
    ServeEngine::Admit A = Engine.submit(std::move(SJ));
    if (A == ServeEngine::Admit::Accepted)
      return;
    // Refused at admission: reclaim the pending entry and give the job a
    // definite outcome anyway.
    PendingJob Dropped;
    {
      std::lock_guard<std::mutex> Lock(PendingM);
      auto It = Pending.find(Ticket);
      if (It == Pending.end())
        return;
      Dropped = std::move(It->second);
      Pending.erase(It);
    }
    // A shed canary ticket still owes the controller a canary completion
    // (issuance is bounded by CanaryJobs, so a dropped report would
    // starve the verdict forever); charge it as a routing failure,
    // exactly like the adaptive.canary failpoint.
    if (Dropped.Ctrl && Dropped.T.Canary)
      Dropped.Ctrl->report(Dropped.T, /*Ok=*/false, /*Cycles=*/0, nullptr);
    AttemptResult R;
    if (A == ServeEngine::Admit::Shed) {
      CtrShed.add();
      R.K = AttemptResult::Rejected;
      emitResult(Dropped.J, "shed", 0, R);
    } else {
      CtrCancelled.add();
      R.K = AttemptResult::Cancelled;
      emitResult(Dropped.J, "cancelled", 0, R);
    }
  }

  /// SIGHUP: ask every controller to respecialize now.
  void requestRespecializeAll() {
    std::lock_guard<std::mutex> Lock(ControllersM);
    for (auto &[Key, C] : Controllers)
      C->requestRespecialize();
  }

  /// Graceful drain: stop admission, cooperatively cancel in-flight jobs
  /// when a shutdown signal asked for it, report still-queued jobs as
  /// cancelled, join the pool, stop the respecializers.
  void shutdown() {
    if (ShutdownRequested)
      Engine.cancelInFlight();
    Engine.shutdown(/*CancelQueued=*/ShutdownRequested != 0);
    std::lock_guard<std::mutex> Lock(ControllersM);
    for (auto &[Key, C] : Controllers)
      C->stop();
  }

private:
  static ServeEngine::Options engineOptions(const ServerOptions &O) {
    ServeEngine::Options EO;
    EO.Threads = O.Threads;
    EO.QueueCapacity =
        O.QueueCapacity ? O.QueueCapacity : static_cast<size_t>(O.Threads) * 4;
    EO.DeadlineAwareAdmission = O.Shed;
    EO.MaxSubmitWaitMs = O.MaxSubmitWaitMs;
    return EO;
  }

  /// One controller per (src, config): finds or creates it, building the
  /// initial incumbent from the persisted profile generation when
  /// --profile-db has one (empty profile otherwise — Selective degrades
  /// to CHA until live arcs accumulate).  Null + message when the
  /// incumbent cannot be built at all.
  AdaptiveController *controllerFor(const Job &J, std::string &Err) {
    std::string Key = SnapshotCache::makeKey({J.Src}, J.Configuration,
                                             defaultTier(), "adaptive");
    std::lock_guard<std::mutex> Lock(ControllersM);
    auto It = Controllers.find(Key);
    if (It != Controllers.end())
      return It->second.get();

    const std::string Src = J.Src;
    const Config Cfg = J.Configuration;
    const ResourceLimits Lim = J.Limits;
    AdaptiveController::SnapshotBuilder Build =
        [Src, Cfg,
         Lim](const CallGraph &Prof,
              std::string &E) -> std::shared_ptr<const CompiledSnapshot> {
      std::shared_ptr<Workbench> WB = Workbench::fromFiles({Src}, E);
      if (!WB)
        return nullptr;
      WB->setLimits(Lim);
      WB->profile().merge(Prof);
      // Brown-out rung 3: under sustained pressure a rebuild settles for
      // the cheapest compile that still serves; the next build after the
      // ladder recovers is Selective again.
      Config UseCfg = Cfg;
      if (UseCfg == Config::Selective && overload::degradeToCha()) {
        UseCfg = Config::CHA;
        CtrDegradedBuilds.add();
      }
      std::shared_ptr<const CompiledSnapshot> S =
          WB->buildSnapshot(UseCfg, E, {}, {}, WB);
      std::string D = WB->diagnostics().toString();
      if (!D.empty())
        std::cerr << D;
      return S;
    };

    CallGraph Seed;
    if (!Opts.ProfileDbPath.empty()) {
      ProfileDb Db;
      Diagnostics Diags;
      if (Db.loadFromFile(Opts.ProfileDbPath, Diags) && Db.hasProgram(Src))
        Seed.merge(Db.forProgram(Src));
    }
    std::shared_ptr<const CompiledSnapshot> Incumbent = Build(Seed, Err);
    if (!Incumbent)
      return nullptr;

    AdaptiveController::Options AO;
    AO.CanaryFraction = Opts.CanaryFraction;
    AO.RespecializeIntervalMs = Opts.RespecializeIntervalMs;
    AO.ArcWeightThreshold = Opts.ArcThreshold;
    AO.SampleEvery = Opts.ArcSample;
    AO.ProfileDbPath = Opts.ProfileDbPath;
    AO.ProgramKey = Src;
    auto C = std::make_unique<AdaptiveController>(std::move(Incumbent),
                                                  std::move(Build), AO);
    if (!Seed.empty())
      C->seedProfile(Seed);
    AdaptiveController *Ptr = C.get();
    Controllers.emplace(std::move(Key), std::move(C));
    return Ptr;
  }

  std::shared_ptr<const CompiledSnapshot> snapshotFor(const Job &J,
                                                      std::string &Err) {
    // Brown-out rung 3: a Selective job arriving while the ladder sits at
    // cha-only gets the CHA snapshot instead — keyed as CHA, so it shares
    // the artifact with genuine CHA jobs and a later Selective request
    // after recovery builds the real thing fresh.
    Config EffCfg = J.Configuration;
    if (EffCfg == Config::Selective && overload::degradeToCha())
      EffCfg = Config::CHA;
    std::string Key = SnapshotCache::makeKey(
        {J.Src}, EffCfg, defaultTier(), std::to_string(J.ProfileInput));
    return Cache.getOrBuild(
        Key,
        [&](std::string &E) -> std::shared_ptr<const CompiledSnapshot> {
          if (EffCfg != J.Configuration)
            CtrDegradedBuilds.add();
          std::shared_ptr<Workbench> WB = Workbench::fromFiles({J.Src}, E);
          if (!WB)
            return nullptr;
          WB->setLimits(J.Limits);
          if (EffCfg == Config::Selective &&
              !WB->collectProfile(J.ProfileInput, E))
            return nullptr;
          // The snapshot keeps its workbench alive (profile, AST) for as
          // long as any thread still runs jobs against it.
          std::shared_ptr<const CompiledSnapshot> S =
              WB->buildSnapshot(EffCfg, E, {}, {}, WB);
          std::string D = WB->diagnostics().toString();
          if (!D.empty())
            std::cerr << D;
          return S;
        },
        Err);
  }

  /// Renders one completion as its JSON result line.  Adaptive jobs first
  /// report their outcome to the controller (feeding the canary verdict
  /// and the live profile), and a job that timed out while a
  /// promotion/rollback swapped snapshots under it — or that was canary
  /// traffic on a candidate — is retried once, synchronously, on the
  /// incumbent: those failures are transient routing artifacts, not
  /// verdicts about the job.
  void emit(ServeEngine::Completion &&Cmp) {
    PendingJob PJ;
    {
      std::lock_guard<std::mutex> Lock(PendingM);
      uint64_t Ticket = std::strtoull(Cmp.TheJob.Id.c_str(), nullptr, 10);
      auto It = Pending.find(Ticket);
      if (It == Pending.end())
        return; // can't happen: every submit registered a ticket
      PJ = std::move(It->second);
      Pending.erase(It);
    }
    Job &J = PJ.J;
    if (Cmp.Cancelled) {
      CtrCancelled.add();
      AttemptResult R;
      R.K = AttemptResult::Cancelled;
      emitResult(J, "cancelled", 0, R);
      return;
    }
    const CompiledSnapshot::JobResult *JR = &Cmp.Result;
    int Attempts = 1;
    CompiledSnapshot::JobResult Retry;
    if (PJ.Ctrl) {
      PJ.Ctrl->report(PJ.T, JR->Ok, JR->Ok ? JR->R.Run.Cycles : 0,
                      PJ.T.SampleArcs ? &JR->Arcs : nullptr);
      bool Transient =
          !JR->Ok && JR->Trap.Kind == TrapKind::DeadlineExceeded &&
          (PJ.T.Canary || PJ.Ctrl->epoch() != PJ.T.Epoch) &&
          !ShutdownRequested;
      if (Transient) {
        CtrAdaptiveRetries.add();
        std::shared_ptr<const CompiledSnapshot> Inc = PJ.Ctrl->incumbent();
        CancelToken Tok;
        if (J.DeadlineMs > 0)
          Tok.setDeadline(Deadline::afterMillis(J.DeadlineMs));
        CompiledSnapshot::JobOptions JO;
        JO.Limits = J.Limits;
        JO.Cancel = &Tok;
        Retry = Inc->run(J.Input, JO);
        // The retry is plain incumbent traffic as far as health goes.
        AdaptiveController::Ticket T2;
        T2.Snap = Inc;
        T2.Epoch = PJ.Ctrl->epoch();
        PJ.Ctrl->report(T2, Retry.Ok, Retry.Ok ? Retry.R.Run.Cycles : 0,
                        nullptr);
        JR = &Retry;
        Attempts = 2;
      }
    }
    AttemptResult R;
    R.WallMs = static_cast<int64_t>(Cmp.RunNanos / 1000000);
    R.MetricsJson = deltaJson(JR->MetricsDelta);
    if (JR->Ok) {
      CtrOk.add();
      if (Attempts > 1)
        CtrRetried.add();
      emitResult(J, Attempts == 1 ? "ok" : "retried(1)", Attempts, R);
      return;
    }
    std::cerr << "micad: job '" << J.Id << "': " << JR->Error << '\n';
    if (JR->Trap.Kind == TrapKind::DeadlineExceeded) {
      CtrTimeout.add();
      R.K = AttemptResult::SoftTimeout;
      R.TheTrap = TrapKind::DeadlineExceeded;
      R.ExitCode = trapExitCode(TrapKind::DeadlineExceeded);
      emitResult(J, "timeout", Attempts, R);
    } else if (JR->Trap.isTrap()) {
      CtrTrap.add();
      if (Quar.recordTrap(J.Src, JR->Trap.Kind))
        std::cerr << "micad: quarantining '" << J.Src << "' after repeated "
                  << trapKindName(JR->Trap.Kind)
                  << " traps; its jobs now take the fork path\n";
      R.K = AttemptResult::Trap;
      R.TheTrap = JR->Trap.Kind;
      R.ExitCode = trapExitCode(JR->Trap.Kind);
      emitResult(J, std::string("trap:") + trapKindName(JR->Trap.Kind),
                 Attempts, R);
    } else {
      CtrGaveUp.add();
      R.K = AttemptResult::Rejected;
      R.ExitCode = 1;
      emitResult(J, "gave-up", Attempts, R);
    }
  }

  /// What dispatch() knew about a submitted job, rejoined at completion.
  struct PendingJob {
    Job J;
    AdaptiveController *Ctrl = nullptr; ///< null in non-adaptive mode
    AdaptiveController::Ticket T;
  };

  const ServerOptions Opts;
  SnapshotCache Cache;
  std::mutex ControllersM;
  std::unordered_map<std::string, std::unique_ptr<AdaptiveController>>
      Controllers;
  std::mutex PendingM;
  std::unordered_map<uint64_t, PendingJob> Pending;
  uint64_t NextTicket = 1;
  CrashQuarantine Quar;
  ServeEngine Engine; // last: its threads may call emit() immediately
};

ServerOptions parseArgs(int Argc, char **Argv) {
  ServerOptions O;
  // Environment default for the per-job byte budget; --max-bytes and the
  // per-job max-bytes= key override it in that order.
  O.DefaultMaxBytes = membudget::maxBytesFromEnv(O.DefaultMaxBytes);
  bool IsolationExplicit = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    // Accept both `--flag value` and `--flag=value`.
    std::string Inline;
    bool HasInline = false;
    if (A.size() > 2 && A[0] == '-' && A[1] == '-') {
      size_t Eq = A.find('=');
      if (Eq != std::string::npos) {
        Inline = A.substr(Eq + 1);
        HasInline = true;
        A = A.substr(0, Eq);
      }
    }
    auto NextValue = [&]() -> std::string {
      if (HasInline)
        return Inline;
      if (I + 1 >= Argc)
        usage(("missing value after " + A).c_str());
      return Argv[++I];
    };
    auto NextInt = [&](const char *Flag) {
      int64_t V = 0;
      if (!parseInt(NextValue(), V) || V < 0)
        usage((std::string("bad value for ") + Flag).c_str());
      return V;
    };
    if (A == "--default-deadline-ms")
      O.DefaultDeadlineMs = NextInt("--default-deadline-ms");
    else if (A == "--default-retries")
      O.DefaultRetries = static_cast<int>(NextInt("--default-retries"));
    else if (A == "--grace-ms")
      O.GraceMs = NextInt("--grace-ms");
    else if (A == "--max-line-bytes")
      O.MaxLineBytes = static_cast<size_t>(NextInt("--max-line-bytes"));
    else if (A == "--max-bytes")
      O.DefaultMaxBytes = static_cast<uint64_t>(NextInt("--max-bytes"));
    else if (A == "--shed")
      O.Shed = true;
    else if (A == "--max-submit-wait-ms")
      O.MaxSubmitWaitMs = NextInt("--max-submit-wait-ms");
    else if (A == "--brownout-mem-bytes")
      O.BrownoutMemBytes = static_cast<uint64_t>(NextInt("--brownout-mem-bytes"));
    else if (A == "--threads") {
      O.Threads = static_cast<unsigned>(NextInt("--threads"));
      if (O.Threads < 1)
        O.Threads = 1;
      if (!IsolationExplicit)
        O.Iso = Isolation::Thread;
    } else if (A == "--isolation") {
      std::string V = NextValue();
      if (V == "thread")
        O.Iso = Isolation::Thread;
      else if (V == "fork")
        O.Iso = Isolation::Fork;
      else
        usage("bad value for --isolation (want thread|fork)");
      IsolationExplicit = true;
    } else if (A == "--queue-capacity")
      O.QueueCapacity = static_cast<size_t>(NextInt("--queue-capacity"));
    else if (A == "--metrics-json")
      O.MetricsJsonPath = NextValue();
    else if (A == "--adaptive")
      O.Adaptive = true;
    else if (A == "--canary-fraction") {
      std::string V = NextValue();
      char *End = nullptr;
      double F = std::strtod(V.c_str(), &End);
      if (!End || *End != '\0' || !(F > 0.0) || F > 1.0)
        usage("bad value for --canary-fraction (want 0 < F <= 1)");
      O.CanaryFraction = F;
    } else if (A == "--respecialize-interval")
      O.RespecializeIntervalMs = NextInt("--respecialize-interval");
    else if (A == "--arc-threshold")
      O.ArcThreshold = static_cast<uint64_t>(NextInt("--arc-threshold"));
    else if (A == "--arc-sample")
      O.ArcSample = static_cast<uint64_t>(NextInt("--arc-sample"));
    else if (A == "--profile-db")
      O.ProfileDbPath = NextValue();
    else if (!A.empty() && A[0] == '-')
      usage(("unknown option " + A).c_str());
    else if (O.JobsPath.empty())
      O.JobsPath = A;
    else
      usage("more than one jobs file");
  }
  if (O.Adaptive) {
    // Adaptive respecialization lives in the in-process serving path:
    // controllers, live arcs and the RCU swap all need shared snapshots.
    if (IsolationExplicit && O.Iso == Isolation::Fork)
      usage("--adaptive requires thread isolation");
    O.Iso = Isolation::Thread;
  }
  return O;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions O = parseArgs(Argc, Argv);

  // Install the brown-out policy before any serving machinery observes
  // pressure; servers log transitions (one line each, rare by design).
  {
    overload::Policy OP;
    OP.MemHighBytes = O.BrownoutMemBytes;
    OP.LogTransitions = true;
    overload::setPolicy(OP);
  }

  // A worker's death must never take the server with it.
  signal(SIGPIPE, SIG_IGN);
  installShutdownHandlers();
  if (O.Adaptive)
    installRespecializeHandler();

  // Arm process-wide failpoints from the environment (soaks arm the
  // adaptive.* points this way; per-job inject= still forks).
  {
    std::string FpErr;
    if (!failpoint::armFromEnv(FpErr)) {
      std::cerr << "micad: SELSPEC_FAILPOINTS: " << FpErr << '\n';
      return 2;
    }
  }

  std::ifstream FileIn;
  if (!O.JobsPath.empty()) {
    FileIn.open(O.JobsPath);
    if (!FileIn) {
      std::cerr << "micad: cannot read '" << O.JobsPath << "'\n";
      return 2;
    }
  }
  std::istream &In = O.JobsPath.empty() ? std::cin : FileIn;

  std::unique_ptr<ThreadServer> TS;
  if (O.Iso == Isolation::Thread)
    TS = std::make_unique<ThreadServer>(O);

  size_t LineNo = 0;
  std::string Line;
  while (!ShutdownRequested && std::getline(In, Line)) {
    ++LineNo;
    if (RespecializeRequested) {
      RespecializeRequested = 0;
      if (TS)
        TS->requestRespecializeAll();
    }
    size_t Start = Line.find_first_not_of(" \t");
    if (Start == std::string::npos || Line[Start] == '#')
      continue;
    Job J;
    std::string Err;
    if (Line.size() > O.MaxLineBytes)
      Err = "request line exceeds --max-line-bytes";
    if (Err.empty() && !parseJob(Line, J, Err))
      Err = "bad request: " + Err;
    if (!Err.empty()) {
      if (J.Id.empty())
        J.Id = "line-" + std::to_string(LineNo);
      std::cerr << "micad: line " << LineNo << ": " << Err << '\n';
      CtrJobs.add();
      CtrRejected.add();
      AttemptResult Rej;
      Rej.K = AttemptResult::Rejected;
      Rej.ExitCode = 2;
      emitResult(J, "gave-up", 0, Rej);
      continue;
    }
    // inject= jobs always take the fork path: failpoints are armed
    // process-globally and must not poison pooled neighbours.
    if (TS && J.Inject.empty())
      TS->dispatch(std::move(J), O, LineNo);
    else
      runJob(std::move(J), O, LineNo);
  }
  // Graceful drain (normal EOF or SIGTERM/SIGINT): stop accepting, let
  // in-flight work finish or cancel by its deadline, report the rest
  // cancelled, flush metrics, exit 0.
  if (TS)
    TS->shutdown();
  if (!O.MetricsJsonPath.empty()) {
    std::string Err;
    if (!metrics::writeJsonFile(O.MetricsJsonPath, Err))
      std::cerr << "micad: " << Err << '\n';
  }
  return 0;
}

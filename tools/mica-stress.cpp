//===- tools/mica-stress.cpp - Crash-proofing stress harness ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random stress harness for the whole pipeline.  Each iteration
/// generates a random Mica program (sometimes byte-mutated into near-junk),
/// pushes it through load -> resolve -> profile -> plan -> optimize -> run
/// under tight resource limits, and sometimes corrupts a serialized profile
/// and feeds it back through the loader.  The single invariant:
///
///   every input yields Diagnostics, a RuntimeTrap, or a normal result —
///   never a crash, assert, or sanitizer report.
///
/// Everything derives deterministically from --seed, so any CI failure is
/// reproducible from the command line it logged.
///
///   mica-stress [--seed S] [--iterations N] [--jobs N] [--failpoints]
///               [--max-seconds N] [--iter-seed S] [--verbose]
///               [--differential]
///
/// --differential switches every iteration to tier-equivalence checking:
/// the generated program is compiled once under a random configuration and
/// executed on BOTH tiers (AST walker and register bytecode); result,
/// trap kind, rendered error, printed output and the full RunStats —
/// including the NodeMix histogram — must match exactly.  Any divergence
/// is reported with the iteration seed and fails the invocation (exit 1),
/// same as a crash.
///
/// Iterations run in forked, supervised workers (--jobs of them; each
/// worker executes its share of the iteration list while drawing every
/// seed, so the seed set is identical to a sequential run).  Before each
/// iteration a worker checkpoints the iteration seed and a running
/// mutator trace to a status file; when a worker dies on a signal the
/// parent re-reads the checkpoint and prints the failing seed, the trace,
/// and a one-command repro line:
///
///   mica-stress --iter-seed 1234567 --failpoints
///
/// --iter-seed replays exactly one iteration in-process (no fork), so the
/// repro runs under a debugger or sanitizer with nothing in the way.
/// --failpoints arms one randomly chosen fail-action failpoint per
/// iteration (derived from the iteration seed); --max-seconds bounds the
/// wall-clock of long nightly runs, stopping cleanly mid-list.
///
/// Exits 0 when all iterations complete (whatever mix of outcomes), 1
/// when a worker crashed (after printing the repro), 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeCompiler.h"
#include "bytecode/BytecodeInterpreter.h"
#include "driver/Pipeline.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "profile/ProfileDb.h"
#include "support/FailPoint.h"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace selspec;

namespace {

struct Outcomes {
  uint64_t LoadRejects = 0;  ///< lex/parse/resolve diagnostics
  uint64_t ProfileTraps = 0; ///< training run trapped
  uint64_t RunTraps = 0;     ///< measured run trapped
  uint64_t ProfileCorruptRejects = 0; ///< corrupted db rejected by loader
  uint64_t ProfileCorruptAccepts = 0; ///< corrupted db survived load+validate
  uint64_t InjectedFailures = 0; ///< armed failpoint fired somewhere
  uint64_t Completed = 0;    ///< measured run finished normally
  uint64_t Iterations = 0;   ///< iterations this worker executed
  uint64_t BcFallbacks = 0;  ///< bytecode compiler could not lower (diff mode)
  uint64_t Mismatches = 0;   ///< tier divergence found (diff mode; fails run)

  void add(const Outcomes &O) {
    LoadRejects += O.LoadRejects;
    ProfileTraps += O.ProfileTraps;
    RunTraps += O.RunTraps;
    ProfileCorruptRejects += O.ProfileCorruptRejects;
    ProfileCorruptAccepts += O.ProfileCorruptAccepts;
    InjectedFailures += O.InjectedFailures;
    Completed += O.Completed;
    Iterations += O.Iterations;
    BcFallbacks += O.BcFallbacks;
    Mismatches += O.Mismatches;
  }
};

struct StressOptions {
  uint64_t Seed = 1;
  uint64_t Iterations = 200;
  unsigned Jobs = 1;
  bool Failpoints = false;
  uint64_t MaxSeconds = 0; // 0 = unbounded
  bool Verbose = false;
  bool HaveIterSeed = false;
  uint64_t IterSeed = 0;
  bool Differential = false;
  /// Nonzero forces the structured hierarchy synthesizer with this many
  /// classes on every iteration (10k-class soak runs); zero keeps the
  /// default mix (one iteration in ten draws a random-knob hierarchy).
  unsigned HierarchyClasses = 0;
};

[[noreturn]] void usage(const char *Message) {
  std::cerr << "mica-stress: " << Message << '\n'
            << "usage: mica-stress [--seed S] [--iterations N] [--jobs N]\n"
               "                   [--failpoints] [--max-seconds N]\n"
               "                   [--iter-seed S] [--verbose]\n"
               "                   [--differential] [--hierarchy-classes N]\n";
  std::exit(2);
}

uint64_t parseU64(const std::string &Text, const char *Flag) {
  uint64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(Text.data(), Text.data() + Text.size(), V);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size())
    usage((std::string("invalid integer '") + Text + "' for " + Flag).c_str());
  return V;
}

/// Crash checkpoint shared with the supervisor: the worker rewrites the
/// whole file before and during each iteration, so after a SIGSEGV the
/// parent recovers the seed and the last phase reached.  -1 disables
/// checkpointing (--iter-seed repro mode).
int StatusFd = -1;

void statusWrite(const std::string &Text) {
  if (StatusFd < 0)
    return;
  // ftruncate-then-pwrite keeps the content consistent even if the worker
  // dies between the calls: a short read just loses the newest marker.
  (void)ftruncate(StatusFd, 0);
  (void)pwrite(StatusFd, Text.data(), Text.size(), 0);
}

/// One tier's observable result for the differential comparison.
struct TierResult {
  bool Ok = false;
  TrapKind Trap = TrapKind::None;
  std::string Error;
  std::string Output;
  RunStats Stats;
};

template <class InterpT>
TierResult runOneTier(InterpT &I, int64_t Input,
                      const std::ostringstream &Out) {
  TierResult R;
  R.Ok = I.callMain(Input);
  R.Trap = I.trap().Kind;
  R.Error = I.errorMessage();
  R.Output = Out.str();
  R.Stats = I.stats();
  return R;
}

/// Appends a description of every differing field to \p Why; true when the
/// two runs agree exactly.
bool sameTierResult(const TierResult &A, const TierResult &B,
                    std::string &Why) {
  auto Field = [&](const char *Name, uint64_t X, uint64_t Y) {
    if (X != Y)
      Why += std::string(" ") + Name + "=" + std::to_string(X) + "/" +
             std::to_string(Y);
  };
  if (A.Ok != B.Ok)
    Why += " ok";
  if (A.Trap != B.Trap)
    Why += std::string(" trap=") + trapKindName(A.Trap) + "/" +
           trapKindName(B.Trap);
  if (A.Error != B.Error)
    Why += " error-text";
  if (A.Output != B.Output)
    Why += " output";
  Field("dispatches", A.Stats.DynamicDispatches, B.Stats.DynamicDispatches);
  Field("selects", A.Stats.VersionSelects, B.Stats.VersionSelects);
  Field("static", A.Stats.StaticCalls, B.Stats.StaticCalls);
  Field("prims", A.Stats.InlinePrims, B.Stats.InlinePrims);
  Field("pred-hit", A.Stats.PredictedHits, B.Stats.PredictedHits);
  Field("pred-miss", A.Stats.PredictedMisses, B.Stats.PredictedMisses);
  Field("fb-hit", A.Stats.FeedbackHits, B.Stats.FeedbackHits);
  Field("fb-miss", A.Stats.FeedbackMisses, B.Stats.FeedbackMisses);
  Field("closures", A.Stats.ClosuresCreated, B.Stats.ClosuresCreated);
  Field("closure-calls", A.Stats.ClosureCalls, B.Stats.ClosureCalls);
  Field("allocs", A.Stats.Allocations, B.Stats.Allocations);
  Field("invokes", A.Stats.MethodInvocations, B.Stats.MethodInvocations);
  Field("nodes", A.Stats.NodesEvaluated, B.Stats.NodesEvaluated);
  Field("depth", A.Stats.PeakDepth, B.Stats.PeakDepth);
  Field("cycles", A.Stats.Cycles, B.Stats.Cycles);
  for (size_t K = 0; K != Expr::NumKinds; ++K)
    if (A.Stats.NodeMix[K] != B.Stats.NodeMix[K])
      Why += std::string(" mix[") +
             exprKindName(static_cast<Expr::Kind>(K)) + "]=" +
             std::to_string(A.Stats.NodeMix[K]) + "/" +
             std::to_string(B.Stats.NodeMix[K]);
  return Why.empty();
}

/// Differential iteration: compile once, execute on both tiers, demand
/// exact agreement.
void runDifferentialIteration(uint64_t IterSeed, const StressOptions &SO,
                              Outcomes &O) {
  ++O.Iterations;
  fuzz::Rng R(IterSeed);

  std::string Trace = "seed=" + std::to_string(IterSeed) + " differential";
  auto Mark = [&](const std::string &Note) {
    Trace += ' ';
    Trace += Note;
    statusWrite(Trace + '\n');
    if (SO.Verbose)
      std::cerr << "  " << Note << '\n';
  };
  statusWrite(Trace + '\n');

  std::string Src = fuzz::generateProgram(R.next());
  // Differential runs also soak the hierarchy axis: one iteration in ten
  // (or all, under --hierarchy-classes) compares the two tiers on a
  // structured megamorphic program instead of the grab-bag module.
  if (SO.HierarchyClasses != 0 || R.below(10) == 4) {
    fuzz::HierarchySpec HS;
    HS.Classes =
        SO.HierarchyClasses != 0 ? SO.HierarchyClasses : 20 + R.below(180);
    HS.Depth = 3 + R.below(12);
    HS.Fanout = 2 + R.below(8);
    HS.MultiParentPercent = R.below(3) == 0 ? 10 : 0;
    HS.MethodLeaves = 2 + R.below(15);
    HS.Generics = 1 + R.below(4);
    HS.Seed = R.next();
    Src = fuzz::generateHierarchyProgram(HS);
    Mark("hierarchy=" + std::to_string(HS.Classes));
  }
  std::string Err;
  Mark("load");
  std::unique_ptr<Workbench> W = Workbench::fromSources({Src}, Err, false);
  if (!W) {
    Mark("load-rejected");
    ++O.LoadRejects;
    return;
  }

  // Tight limits so the depth guard (not the native-stack backstop, whose
  // trip point differs per tier by frame size) bounds runaway recursion.
  ResourceLimits Limits;
  Limits.MaxNodes = 200000;
  Limits.MaxDepth = 64;
  Limits.MaxObjects = 20000;
  W->setLimits(Limits);
  W->setTier(ExecTier::Ast); // the profile run is not under test here

  Mark("profile");
  if (!W->collectProfile(2 + R.below(4), Err)) {
    ++O.ProfileTraps;
    Mark(std::string("profile-trapped=") + trapKindName(W->lastTrap().Kind));
  }

  static const Config Configs[] = {Config::Base, Config::Cust,
                                   Config::CustMM, Config::CHA,
                                   Config::Selective};
  Config Cfg = Configs[R.below(5)];
  int64_t Input = 2 + R.below(6);
  Mark(std::string("compile config=") + configName(Cfg));
  std::unique_ptr<CompiledProgram> CP = W->compileOnly(Cfg);
  if (!CP) {
    Mark("compile-gated");
    return;
  }
  BcModule Mod = compileToBytecode(*CP);
  if (!Mod.Ok) {
    // Not a divergence — the driver would fall back — but worth counting:
    // the lowering is meant to be total.
    Mark("bytecode-fallback: " + Mod.Error);
    ++O.BcFallbacks;
    return;
  }

  Mark("run-both");
  TierResult Ast, Bc;
  {
    std::ostringstream Out;
    RunOptions Opts;
    Opts.Output = &Out;
    Opts.Limits = Limits;
    Interpreter I(*CP, Opts);
    Ast = runOneTier(I, Input, Out);
  }
  {
    std::ostringstream Out;
    RunOptions Opts;
    Opts.Output = &Out;
    Opts.Limits = Limits;
    BytecodeInterpreter I(*CP, Mod, Opts);
    Bc = runOneTier(I, Input, Out);
  }

  std::string Why;
  if (!sameTierResult(Ast, Bc, Why)) {
    ++O.Mismatches;
    Mark("MISMATCH:" + Why);
    std::cerr << "mica-stress: tier mismatch at seed " << IterSeed
              << " config=" << configName(Cfg) << " input=" << Input << ":"
              << Why << "\n  repro: mica-stress --differential --iter-seed "
              << IterSeed << '\n';
    return;
  }
  if (Ast.Ok)
    ++O.Completed;
  else
    ++O.RunTraps;
  Mark("agreed");
}

void runIteration(uint64_t IterSeed, const StressOptions &SO, Outcomes &O) {
  if (SO.Differential)
    return runDifferentialIteration(IterSeed, SO, O);
  ++O.Iterations;
  fuzz::Rng R(IterSeed);

  std::string Trace = "seed=" + std::to_string(IterSeed);
  auto Mark = [&](const std::string &Note) {
    Trace += ' ';
    Trace += Note;
    statusWrite(Trace + '\n');
    if (SO.Verbose)
      std::cerr << "  " << Note << '\n';
  };
  statusWrite(Trace + '\n');

  // Fault injection: one randomly chosen fail-action failpoint per
  // iteration, derived from the iteration seed so --iter-seed replays the
  // same injection.  Crash actions stay out — this harness asserts the
  // no-crash invariant.
  if (SO.Failpoints) {
    const std::vector<const char *> &Names = failpoint::allNames();
    std::string Name = Names[R.below(static_cast<uint32_t>(Names.size()))];
    std::string E;
    failpoint::disarmAll();
    failpoint::configure(Name + "=fail", E);
    Mark("failpoint=" + Name);
  }
  uint64_t HitsBefore = failpoint::totalHits();

  std::string Src = fuzz::generateProgram(R.next());

  // Three in ten iterations smash the source bytes first: the front end
  // must survive arbitrary junk, not just generator-shaped programs.
  // One in ten swaps in a structured hierarchy (deep/wide class trees,
  // megamorphic k-way sites, occasional diamonds) instead of the
  // grab-bag module; --hierarchy-classes forces that on every iteration.
  unsigned Mode = R.below(10);
  if (SO.HierarchyClasses != 0 || Mode == 4) {
    fuzz::HierarchySpec HS;
    HS.Classes =
        SO.HierarchyClasses != 0 ? SO.HierarchyClasses : 20 + R.below(180);
    HS.Depth = 3 + R.below(12);
    HS.Fanout = 2 + R.below(8);
    HS.MultiParentPercent = R.below(3) == 0 ? 10 : 0;
    HS.MethodLeaves = 2 + R.below(15);
    HS.Generics = 1 + R.below(4);
    HS.Seed = R.next();
    Src = fuzz::generateHierarchyProgram(HS);
    Mark("hierarchy=" + std::to_string(HS.Classes));
  } else if (Mode < 3) {
    Src = fuzz::mutateBytes(Src, R, 1 + R.below(8));
    Mark("mutate-bytes");
  }

  std::string Err;
  Mark("load");
  std::unique_ptr<Workbench> W = Workbench::fromSources({Src}, Err, false);
  if (!W) {
    Mark("load-rejected");
    ++O.LoadRejects;
    if (SO.Failpoints && failpoint::totalHits() != HitsBefore)
      ++O.InjectedFailures;
    return;
  }

  // Tight limits: generated programs routinely loop or recurse, and the
  // harness must churn through thousands of them quickly.
  ResourceLimits Limits;
  Limits.MaxNodes = 200000;
  Limits.MaxDepth = 64;
  Limits.MaxObjects = 20000;
  W->setLimits(Limits);

  Mark("profile");
  if (!W->collectProfile(2 + R.below(4), Err)) {
    ++O.ProfileTraps;
    Mark(std::string("profile-trapped=") + trapKindName(W->lastTrap().Kind));
    // Keep going: Selective must degrade on the empty profile.
  }

  // One in ten iterations round-trips the collected profile through the
  // serializer with byte corruption on the way back in.
  if (Mode == 3) {
    Mark("corrupt-db");
    ProfileDb Db;
    Db.forProgram("fuzz").merge(W->profile());
    std::string Text = fuzz::mutateBytes(Db.serialize(), R, 1 + R.below(6));
    ProfileDb Loaded;
    Diagnostics Diags;
    if (Loaded.deserialize(Text, Diags)) {
      Loaded.validate("fuzz", W->program(), Diags);
      ++O.ProfileCorruptAccepts;
    } else {
      ++O.ProfileCorruptRejects;
    }
  }

  static const Config Configs[] = {Config::Base, Config::CHA,
                                   Config::Selective};
  Config C = Configs[R.below(3)];
  Mark(std::string("run config=") + configName(C));
  std::optional<ConfigResult> CR =
      W->runConfig(C, 2 + R.below(6), Err, SelectiveOptions{});
  if (CR) {
    ++O.Completed;
    Mark("completed");
  } else {
    ++O.RunTraps;
    Mark(std::string("run-trapped=") + trapKindName(W->lastTrap().Kind));
  }
  if (SO.Failpoints && failpoint::totalHits() != HitsBefore)
    ++O.InjectedFailures;
}

/// The iteration loop of one worker.  Worker \p Index executes iterations
/// where I % Jobs == Index, drawing every seed from the stream so the seed
/// set matches a sequential run exactly.
Outcomes workerLoop(const StressOptions &SO, unsigned Index) {
  Outcomes O;
  fuzz::Rng SeedStream(SO.Seed);
  auto Start = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I != SO.Iterations; ++I) {
    uint64_t IterSeed = SeedStream.next();
    if (I % SO.Jobs != Index)
      continue;
    if (SO.MaxSeconds &&
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - Start)
                .count() >= static_cast<int64_t>(SO.MaxSeconds))
      break;
    if (SO.Verbose)
      std::cerr << "-- iter " << I << " seed " << IterSeed << '\n';
    runIteration(IterSeed, SO, O);
  }
  failpoint::disarmAll();
  return O;
}

std::string statusPath(unsigned Index) {
  return "/tmp/mica-stress-" + std::to_string(getpid()) + "-" +
         std::to_string(Index) + ".status";
}

/// Serializes a worker's final tallies into its status file; the "done "
/// prefix distinguishes a clean exit from a crash checkpoint.
void writeDone(const Outcomes &O) {
  statusWrite("done " + std::to_string(O.LoadRejects) + ' ' +
              std::to_string(O.ProfileTraps) + ' ' +
              std::to_string(O.RunTraps) + ' ' +
              std::to_string(O.ProfileCorruptRejects) + ' ' +
              std::to_string(O.ProfileCorruptAccepts) + ' ' +
              std::to_string(O.InjectedFailures) + ' ' +
              std::to_string(O.Completed) + ' ' +
              std::to_string(O.Iterations) + ' ' +
              std::to_string(O.BcFallbacks) + ' ' +
              std::to_string(O.Mismatches) + '\n');
}

bool parseDone(const std::string &Text, Outcomes &O) {
  if (Text.rfind("done ", 0) != 0)
    return false;
  std::istringstream IS(Text.substr(5));
  return static_cast<bool>(IS >> O.LoadRejects >> O.ProfileTraps >>
                           O.RunTraps >> O.ProfileCorruptRejects >>
                           O.ProfileCorruptAccepts >> O.InjectedFailures >>
                           O.Completed >> O.Iterations >> O.BcFallbacks >>
                           O.Mismatches);
}

std::string readAll(const std::string &Path) {
  std::string Out;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

/// Parses a crash checkpoint ("seed=<S> <marker> <marker>...") and prints
/// the one-command repro line.
void reportCrash(const StressOptions &SO, unsigned Index, int Signal,
                 const std::string &Checkpoint) {
  std::cerr << "mica-stress: worker " << Index << " died with signal "
            << Signal << '\n';
  std::string Line = Checkpoint.substr(0, Checkpoint.find('\n'));
  if (Line.rfind("seed=", 0) == 0) {
    size_t Sp = Line.find(' ');
    std::string Seed = Line.substr(5, Sp == std::string::npos ? Sp : Sp - 5);
    std::cerr << "  failing iteration seed: " << Seed << '\n'
              << "  mutator trace: "
              << (Sp == std::string::npos ? "(none)" : Line.substr(Sp + 1))
              << '\n'
              << "  repro: mica-stress --iter-seed " << Seed
              << (SO.Failpoints ? " --failpoints" : "")
              << (SO.Differential ? " --differential" : "") << '\n';
  } else {
    std::cerr << "  no checkpoint recorded (crash before first iteration)\n";
  }
}

} // namespace

int main(int Argc, char **Argv) {
  StressOptions SO;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value after " + A).c_str());
      return Argv[++I];
    };
    if (A == "--seed")
      SO.Seed = parseU64(NextValue(), "--seed");
    else if (A == "--iterations")
      SO.Iterations = parseU64(NextValue(), "--iterations");
    else if (A == "--jobs") {
      SO.Jobs = static_cast<unsigned>(parseU64(NextValue(), "--jobs"));
      if (SO.Jobs == 0 || SO.Jobs > 256)
        usage("--jobs must be between 1 and 256");
    } else if (A == "--failpoints")
      SO.Failpoints = true;
    else if (A == "--max-seconds")
      SO.MaxSeconds = parseU64(NextValue(), "--max-seconds");
    else if (A == "--iter-seed") {
      SO.HaveIterSeed = true;
      SO.IterSeed = parseU64(NextValue(), "--iter-seed");
    } else if (A == "--verbose")
      SO.Verbose = true;
    else if (A == "--differential")
      SO.Differential = true;
    else if (A == "--hierarchy-classes") {
      SO.HierarchyClasses = static_cast<unsigned>(
          parseU64(NextValue(), "--hierarchy-classes"));
      if (SO.HierarchyClasses < 2 || SO.HierarchyClasses > 100000)
        usage("--hierarchy-classes must be between 2 and 100000");
    } else
      usage(("unknown option " + A).c_str());
  }

  // Repro mode: exactly one iteration, in-process, chatty — nothing
  // between a debugger and the crash being reproduced.
  if (SO.HaveIterSeed) {
    StressOptions One = SO;
    One.Verbose = true;
    Outcomes O;
    runIteration(SO.IterSeed, One, O);
    std::cout << "mica-stress: iteration seed " << SO.IterSeed
              << " completed\n";
    return 0;
  }

  // Fork the workers; each gets a status file for crash checkpoints.
  std::vector<pid_t> Pids(SO.Jobs, -1);
  for (unsigned K = 0; K != SO.Jobs; ++K) {
    std::string Path = statusPath(K);
    int Fd = open(Path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0600);
    if (Fd < 0) {
      std::cerr << "mica-stress: cannot create " << Path << ": "
                << std::strerror(errno) << '\n';
      return 2;
    }
    std::cout.flush();
    std::cerr.flush();
    pid_t Pid = fork();
    if (Pid < 0) {
      std::cerr << "mica-stress: fork failed: " << std::strerror(errno)
                << '\n';
      return 2;
    }
    if (Pid == 0) {
      StatusFd = Fd;
      Outcomes O = workerLoop(SO, K);
      writeDone(O);
      std::cout.flush();
      std::cerr.flush();
      _exit(0);
    }
    close(Fd);
    Pids[K] = Pid;
  }

  // Reap all workers; a signal death means the no-crash invariant broke,
  // so recover the checkpoint and print the repro line.
  Outcomes Total;
  bool Crashed = false;
  for (unsigned K = 0; K != SO.Jobs; ++K) {
    int Status = 0;
    if (waitpid(Pids[K], &Status, 0) < 0)
      continue;
    std::string Text = readAll(statusPath(K));
    (void)unlink(statusPath(K).c_str());
    if (WIFSIGNALED(Status)) {
      Crashed = true;
      reportCrash(SO, K, WTERMSIG(Status), Text);
      continue;
    }
    Outcomes O;
    if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0 && parseDone(Text, O)) {
      Total.add(O);
    } else {
      Crashed = true;
      std::cerr << "mica-stress: worker " << K << " exited abnormally (code "
                << (WIFEXITED(Status) ? WEXITSTATUS(Status) : -1) << ")\n";
    }
  }

  std::cout << "mica-stress: " << Total.Iterations << " iteration(s), seed "
            << SO.Seed << ", jobs " << SO.Jobs
            << "\n  load rejects:        " << Total.LoadRejects
            << "\n  profile traps:       " << Total.ProfileTraps
            << "\n  run traps:           " << Total.RunTraps
            << "\n  corrupt db rejected: " << Total.ProfileCorruptRejects
            << "\n  corrupt db accepted: " << Total.ProfileCorruptAccepts
            << "\n  injected failures:   " << Total.InjectedFailures
            << "\n  completed runs:      " << Total.Completed << '\n';
  if (SO.Differential)
    std::cout << "  bytecode fallbacks:  " << Total.BcFallbacks
              << "\n  tier mismatches:     " << Total.Mismatches << '\n';
  if (Total.Mismatches)
    std::cerr << "mica-stress: " << Total.Mismatches
              << " tier mismatch(es) — the bytecode tier diverged\n";
  return (Crashed || Total.Mismatches) ? 1 : 0;
}

//===- tools/mica-stress.cpp - Crash-proofing stress harness ----------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random stress harness for the whole pipeline.  Each iteration
/// generates a random Mica program (sometimes byte-mutated into near-junk),
/// pushes it through load -> resolve -> profile -> plan -> optimize -> run
/// under tight resource limits, and sometimes corrupts a serialized profile
/// and feeds it back through the loader.  The single invariant:
///
///   every input yields Diagnostics, a RuntimeTrap, or a normal result —
///   never a crash, assert, or sanitizer report.
///
/// Everything derives deterministically from --seed, so any CI failure is
/// reproducible from the command line it logged.
///
///   mica-stress [--seed S] [--iterations N] [--verbose]
///
/// Exits 0 when all iterations complete (whatever mix of outcomes), 2 on
/// usage errors.  A crash simply never reaches the exit path.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "profile/ProfileDb.h"

#include <charconv>
#include <iostream>
#include <string>

using namespace selspec;

namespace {

struct Outcomes {
  unsigned LoadRejects = 0;  ///< lex/parse/resolve diagnostics
  unsigned ProfileTraps = 0; ///< training run trapped
  unsigned RunTraps = 0;     ///< measured run trapped
  unsigned ProfileCorruptRejects = 0; ///< corrupted db rejected by loader
  unsigned ProfileCorruptAccepts = 0; ///< corrupted db survived load+validate
  unsigned Completed = 0;    ///< measured run finished normally
};

[[noreturn]] void usage(const char *Message) {
  std::cerr << "mica-stress: " << Message << '\n'
            << "usage: mica-stress [--seed S] [--iterations N] [--verbose]\n";
  std::exit(2);
}

uint64_t parseU64(const std::string &Text, const char *Flag) {
  uint64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(Text.data(), Text.data() + Text.size(), V);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size())
    usage((std::string("invalid integer '") + Text + "' for " + Flag).c_str());
  return V;
}

void runIteration(uint64_t IterSeed, bool Verbose, Outcomes &O) {
  fuzz::Rng R(IterSeed);
  std::string Src = fuzz::generateProgram(R.next());

  // Three in ten iterations smash the source bytes first: the front end
  // must survive arbitrary junk, not just generator-shaped programs.
  unsigned Mode = R.below(10);
  if (Mode < 3)
    Src = fuzz::mutateBytes(Src, R, 1 + R.below(8));

  std::string Err;
  std::unique_ptr<Workbench> W = Workbench::fromSources({Src}, Err, false);
  if (!W) {
    if (Verbose)
      std::cerr << "  load rejected\n";
    ++O.LoadRejects;
    return;
  }

  // Tight limits: generated programs routinely loop or recurse, and the
  // harness must churn through thousands of them quickly.
  ResourceLimits Limits;
  Limits.MaxNodes = 200000;
  Limits.MaxDepth = 64;
  Limits.MaxObjects = 20000;
  W->setLimits(Limits);

  if (!W->collectProfile(2 + R.below(4), Err)) {
    ++O.ProfileTraps;
    if (Verbose)
      std::cerr << "  profile trapped: " << trapKindName(W->lastTrap().Kind)
                << '\n';
    // Keep going: Selective must degrade on the empty profile.
  }

  // One in ten iterations round-trips the collected profile through the
  // serializer with byte corruption on the way back in.
  if (Mode == 3) {
    ProfileDb Db;
    Db.forProgram("fuzz").merge(W->profile());
    std::string Text = fuzz::mutateBytes(Db.serialize(), R, 1 + R.below(6));
    ProfileDb Loaded;
    Diagnostics Diags;
    if (Loaded.deserialize(Text, Diags)) {
      Loaded.validate("fuzz", W->program(), Diags);
      ++O.ProfileCorruptAccepts;
    } else {
      ++O.ProfileCorruptRejects;
    }
  }

  static const Config Configs[] = {Config::Base, Config::CHA,
                                   Config::Selective};
  Config C = Configs[R.below(3)];
  std::optional<ConfigResult> CR =
      W->runConfig(C, 2 + R.below(6), Err, SelectiveOptions{});
  if (CR) {
    ++O.Completed;
    if (Verbose)
      std::cerr << "  completed under " << configName(C) << '\n';
  } else {
    ++O.RunTraps;
    if (Verbose)
      std::cerr << "  run trapped under " << configName(C) << ": "
                << trapKindName(W->lastTrap().Kind) << '\n';
  }
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = 1;
  uint64_t Iterations = 200;
  bool Verbose = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value after " + A).c_str());
      return Argv[++I];
    };
    if (A == "--seed")
      Seed = parseU64(NextValue(), "--seed");
    else if (A == "--iterations")
      Iterations = parseU64(NextValue(), "--iterations");
    else if (A == "--verbose")
      Verbose = true;
    else
      usage(("unknown option " + A).c_str());
  }

  Outcomes O;
  fuzz::Rng SeedStream(Seed);
  for (uint64_t I = 0; I != Iterations; ++I) {
    uint64_t IterSeed = SeedStream.next();
    if (Verbose)
      std::cerr << "-- iter " << I << " seed " << IterSeed << '\n';
    runIteration(IterSeed, Verbose, O);
  }

  std::cout << "mica-stress: " << Iterations << " iteration(s), seed " << Seed
            << "\n  load rejects:        " << O.LoadRejects
            << "\n  profile traps:       " << O.ProfileTraps
            << "\n  run traps:           " << O.RunTraps
            << "\n  corrupt db rejected: " << O.ProfileCorruptRejects
            << "\n  corrupt db accepted: " << O.ProfileCorruptAccepts
            << "\n  completed runs:      " << O.Completed << '\n';
  return 0;
}

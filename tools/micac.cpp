//===- tools/micac.cpp - Mica compiler/runner CLI ---------------------------===//
//
// Part of the selspec project (PLDI'95 selective specialization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the whole pipeline:
///
///   micac check   <files...>                parse + resolve only
///   micac run     <files...> [options]      compile under one config & run
///   micac report  <files...> [options]      compare all five configurations
///   micac profile <files...> [options]      collect a profile, save the DB
///   micac plan    <files...> [options]      emit specialization directives
///   micac dump    <files...> [options]      print optimized method bodies
///
/// Options:
///   --input N           main() argument for the measured run   [10]
///   --profile-input N   main() argument for the training run   [= input]
///   --config NAME       base|cust|cust-mm|cha|selective        [selective]
///   --tier NAME         execution tier: ast|bytecode           [bytecode,
///                       or the SELSPEC_TIER environment variable]
///   --dump-bytecode     run/dump: print the register-bytecode listing of
///                       the compiled program (opcodes, sites, inline-cache
///                       state) to stdout
///   --threshold T       SpecializationThreshold                [1000]
///   --no-cascade        disable cascading specializations
///   --no-stdlib         do not prepend mica/stdlib.mica
///   --feedback          enable profile-guided type feedback
///   --return-classes    enable interprocedural return-class analysis
///   --stats             print run statistics
///   --time-report       print per-phase wall-clock times and the
///                       executed-node-kind histogram of the measured run
///   --db FILE           profile-database path (profile subcommand) [profile.db]
///   --profile-db FILE   run: load the training profile from a saved database
///                       instead of running the training input
///   --directives FILE   run: execute a saved directives file instead of
///                       planning; plan: where to write the directives
///   --max-depth N       Mica recursion depth limit                [800]
///   --max-nodes N       executed-node budget per run              [4e9]
///   --max-objects N     live heap object-count limit              [16M]
///   --deadline-ms N     whole-invocation wall-clock deadline; phases
///                       and runs stop cooperatively with exit 23  [off]
///   --metrics-json FILE write the process-wide counter registry as a
///                       flat JSON object on exit (any command)
///   --trace-out FILE    write a Chrome-trace-format (Perfetto-loadable)
///                       span file of the pipeline phases on exit
///
/// The SELSPEC_FAILPOINTS environment variable (name=fail|crash, comma
/// separated; see support/FailPoint.h) arms deterministic fault injection
/// for resilience testing; a bad spec is a usage error.
///
/// Exit codes: 0 success; 1 load/compile diagnostics; 2 usage errors;
/// 10-17 runtime traps (type error, dispatch failure, bounds, ...);
/// 20-22 resource limits (node budget, recursion depth, heap);
/// 23 deadline exceeded; 70 internal errors.  See trapExitCode() in
/// interp/RuntimeTrap.h.
///
/// File arguments are looked up in the working directory first, then in
/// the repository's mica/ directory.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BytecodeCompiler.h"
#include "bytecode/Disassembler.h"
#include "driver/Pipeline.h"
#include "interp/RuntimeTrap.h"
#include "lang/AstPrinter.h"
#include "driver/Report.h"
#include "profile/ProfileDb.h"
#include "specialize/Directives.h"
#include "support/FailPoint.h"
#include "support/MemoryBudget.h"
#include "support/Metrics.h"
#include "support/PhaseTimer.h"
#include "support/TraceEmitter.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace selspec;

namespace {

struct CliOptions {
  std::string Command;
  std::vector<std::string> Files;
  int64_t Input = 10;
  int64_t ProfileInput = -1; // default: same as Input
  Config Configuration = Config::Selective;
  SelectiveOptions Sel;
  OptimizerOptions Opt;
  bool WithStdlib = true;
  bool Stats = false;
  bool TimeReport = false;
  std::string DbPath = "profile.db";
  std::string ProfileDbPath;
  std::string DirectivesPath;
  std::string MetricsJsonPath;
  std::string TraceOutPath;
  ResourceLimits Limits;
  int64_t DeadlineMs = 0; // 0 = no deadline
  std::optional<ExecTier> Tier;
  bool DumpBytecode = false;
};

/// Whole-invocation stop signal; armed in main() when --deadline-ms is
/// given and threaded through every Workbench and Interpreter.
CancelToken GlobalCancel;
const CancelToken *ActiveCancel = nullptr;

[[noreturn]] void usage(const char *Message = nullptr) {
  if (Message)
    std::cerr << "micac: " << Message << "\n\n";
  std::cerr <<
      "usage: micac <check|run|report|profile|plan|dump> <files...> [options]\n"
      "  --input N  --profile-input N  --config NAME  --threshold T\n"
      "  --tier NAME  --dump-bytecode\n"
      "  --no-cascade  --no-stdlib  --feedback  --return-classes\n"
      "  --stats  --time-report  --db FILE  --profile-db FILE\n"
      "  --max-depth N  --max-nodes N  --max-objects N  --max-bytes N\n"
      "  --deadline-ms N\n"
      "  --metrics-json FILE  --trace-out FILE\n";
  std::exit(2);
}

/// Parses a full decimal integer or exits with a usage error — CLI input
/// must never throw (std::stoll does on junk or overflow).
template <typename T> T parseIntArg(const std::string &Text, const char *Flag) {
  T V{};
  auto [Ptr, Ec] = std::from_chars(Text.data(), Text.data() + Text.size(), V);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size())
    usage((std::string("invalid integer '") + Text + "' for " + Flag).c_str());
  return V;
}

bool parseConfig(const std::string &Name, Config &Out) {
  if (Name == "base") Out = Config::Base;
  else if (Name == "cust") Out = Config::Cust;
  else if (Name == "cust-mm" || Name == "custmm") Out = Config::CustMM;
  else if (Name == "cha") Out = Config::CHA;
  else if (Name == "selective") Out = Config::Selective;
  else return false;
  return true;
}

CliOptions parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    usage();
  CliOptions O;
  O.Command = Argv[1];
  // Environment default for the byte budget; an explicit --max-bytes
  // below overrides it.
  O.Limits.MaxBytes = membudget::maxBytesFromEnv(O.Limits.MaxBytes);
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextValue = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value after " + A).c_str());
      return Argv[++I];
    };
    if (A == "--input")
      O.Input = parseIntArg<int64_t>(NextValue(), "--input");
    else if (A == "--profile-input")
      O.ProfileInput = parseIntArg<int64_t>(NextValue(), "--profile-input");
    else if (A == "--config") {
      if (!parseConfig(NextValue(), O.Configuration))
        usage("unknown --config value");
    } else if (A == "--threshold")
      O.Sel.SpecializationThreshold =
          parseIntArg<uint64_t>(NextValue(), "--threshold");
    else if (A == "--max-depth") {
      O.Limits.MaxDepth = parseIntArg<uint32_t>(NextValue(), "--max-depth");
      if (O.Limits.MaxDepth == 0)
        usage("--max-depth must be at least 1");
    } else if (A == "--max-nodes") {
      O.Limits.MaxNodes = parseIntArg<uint64_t>(NextValue(), "--max-nodes");
      if (O.Limits.MaxNodes == 0)
        usage("--max-nodes must be at least 1");
    } else if (A == "--max-objects") {
      O.Limits.MaxObjects = parseIntArg<uint64_t>(NextValue(), "--max-objects");
      if (O.Limits.MaxObjects == 0)
        usage("--max-objects must be at least 1");
    } else if (A == "--max-bytes") {
      O.Limits.MaxBytes = parseIntArg<uint64_t>(NextValue(), "--max-bytes");
      if (O.Limits.MaxBytes == 0)
        usage("--max-bytes must be at least 1");
    } else if (A == "--deadline-ms") {
      O.DeadlineMs = parseIntArg<int64_t>(NextValue(), "--deadline-ms");
      if (O.DeadlineMs <= 0)
        usage("--deadline-ms must be at least 1");
    } else if (A == "--tier" || A.rfind("--tier=", 0) == 0) {
      std::string Name = A == "--tier" ? NextValue() : A.substr(7);
      std::optional<ExecTier> T = parseTier(Name);
      if (!T)
        usage(("unknown --tier value '" + Name + "' (ast|bytecode)").c_str());
      O.Tier = *T;
    } else if (A == "--dump-bytecode")
      O.DumpBytecode = true;
    else if (A == "--profile-db")
      O.ProfileDbPath = NextValue();
    else if (A == "--no-cascade")
      O.Sel.CascadeSpecializations = false;
    else if (A == "--no-stdlib")
      O.WithStdlib = false;
    else if (A == "--feedback")
      O.Opt.EnableTypeFeedback = true;
    else if (A == "--return-classes")
      O.Opt.UseReturnClasses = true;
    else if (A == "--stats")
      O.Stats = true;
    else if (A == "--time-report")
      O.TimeReport = true;
    else if (A == "--db")
      O.DbPath = NextValue();
    else if (A == "--directives")
      O.DirectivesPath = NextValue();
    else if (A == "--metrics-json")
      O.MetricsJsonPath = NextValue();
    else if (A == "--trace-out")
      O.TraceOutPath = NextValue();
    else if (!A.empty() && A[0] == '-')
      usage(("unknown option " + A).c_str());
    else
      O.Files.push_back(A);
  }
  if (O.Files.empty())
    usage("no input files");
  if (O.ProfileInput < 0)
    O.ProfileInput = O.Input;
  return O;
}

/// Reads a file from the working directory, falling back to mica/.
std::optional<std::string> readSource(const std::string &Path) {
  std::ifstream IS(Path);
  if (IS) {
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    return Buf.str();
  }
  return Workbench::readMicaFile(Path);
}

std::unique_ptr<Workbench> load(const CliOptions &O) {
  std::vector<std::string> Sources;
  for (const std::string &F : O.Files) {
    std::optional<std::string> Src = readSource(F);
    if (!Src) {
      std::cerr << "micac: cannot read '" << F << "'\n";
      std::exit(1);
    }
    Sources.push_back(std::move(*Src));
  }
  std::string Err;
  std::unique_ptr<Workbench> W =
      Workbench::fromSources(Sources, Err, O.WithStdlib, ActiveCancel);
  if (!W) {
    if (!Err.empty() && Err.back() != '\n')
      Err += '\n';
    std::cerr << "micac: " << Err;
    std::exit(ActiveCancel && ActiveCancel->stopRequested()
                  ? trapExitCode(TrapKind::DeadlineExceeded)
                  : 1);
  }
  W->setLimits(O.Limits);
  if (O.Tier)
    W->setTier(*O.Tier);
  return W;
}

/// Renders accumulated pipeline warnings (e.g. Selective degrading to CHA)
/// to stderr and clears them.
void flushDiags(Workbench &W) {
  std::string Text = W.diagnostics().toString();
  if (!Text.empty())
    std::cerr << Text;
  W.diagnostics().clear();
}

/// Exit code for a failed run: the trap-specific code when the failure was
/// a runtime trap, 1 otherwise (load/compile diagnostics).
int failureExit(const RuntimeTrap &T) {
  return T.isTrap() ? trapExitCode(T.Kind) : 1;
}

/// Compiles under the selected configuration and prints the register-
/// bytecode listing (--dump-bytecode).  Returns the exit code.
int dumpBytecodeListing(Workbench &W, const CliOptions &O) {
  std::unique_ptr<CompiledProgram> CP =
      W.compileOnly(O.Configuration, O.Sel, O.Opt);
  flushDiags(W);
  if (!CP) {
    if (W.lastTrap().isTrap())
      std::cerr << "micac: " << W.lastTrap().Message << '\n';
    return failureExit(W.lastTrap());
  }
  BcModule Mod = compileToBytecode(*CP);
  if (!Mod.Ok) {
    std::cerr << "micac: bytecode compilation failed: " << Mod.Error << '\n';
    return 1;
  }
  disassemble(Mod, W.program(), std::cout);
  return 0;
}

void printStats(const ConfigResult &R) {
  const RunStats &S = R.Run;
  std::cout << "-- stats (" << configName(R.Configuration) << ")\n"
            << "   dispatches:        " << TextTable::count(S.totalDispatches())
            << " (dynamic " << TextTable::count(S.DynamicDispatches)
            << ", selects " << TextTable::count(S.VersionSelects) << ")\n"
            << "   static calls:      " << TextTable::count(S.StaticCalls)
            << "\n   inlined prims:     " << TextTable::count(S.InlinePrims)
            << "\n   predicted hit/miss: " << TextTable::count(S.PredictedHits)
            << "/" << TextTable::count(S.PredictedMisses)
            << "\n   feedback hit/miss:  " << TextTable::count(S.FeedbackHits)
            << "/" << TextTable::count(S.FeedbackMisses)
            << "\n   closures new/call: " << TextTable::count(S.ClosuresCreated)
            << "/" << TextTable::count(S.ClosureCalls)
            << "\n   cycles:            " << TextTable::count(S.Cycles)
            << "\n   compiled routines: " << TextTable::count(R.CompiledRoutines)
            << " (invoked " << TextTable::count(R.InvokedRoutines) << ")\n";
}

void printNodeMix(const RunStats &S) {
  std::cout << "-- node mix (" << TextTable::count(S.NodesEvaluated)
            << " nodes evaluated)\n";
  std::vector<std::pair<uint64_t, unsigned>> Rows;
  for (unsigned K = 0; K != Expr::NumKinds; ++K)
    if (S.NodeMix[K])
      Rows.emplace_back(S.NodeMix[K], K);
  std::sort(Rows.rbegin(), Rows.rend());
  for (const auto &[Count, K] : Rows) {
    std::ostringstream Pct;
    Pct.precision(1);
    Pct << std::fixed
        << 100.0 * static_cast<double>(Count) /
               static_cast<double>(S.NodesEvaluated);
    std::string Name = exprKindName(static_cast<Expr::Kind>(K));
    std::cout << "   " << Name << std::string(14 - Name.size(), ' ')
              << TextTable::count(Count) << "  (" << Pct.str() << "%)\n";
  }
}

int cmdCheck(const CliOptions &O) {
  std::unique_ptr<Workbench> W = load(O);
  std::cout << "ok: " << W->program().numUserMethods() << " methods, "
            << W->program().Classes.size() << " classes, "
            << W->program().numCallSites() << " call sites, "
            << W->sourceLines() << " lines\n";
  return 0;
}

int cmdRun(const CliOptions &O) {
  PhaseTimer::global().setEnabled(O.TimeReport);
  std::unique_ptr<Workbench> W = load(O);
  std::string Err;

  // Replaying a saved directives file skips planning (Section 4's
  // "the compiler then executes the directives").
  if (!O.DirectivesPath.empty()) {
    std::ifstream IS(O.DirectivesPath);
    if (!IS) {
      std::cerr << "micac: cannot read '" << O.DirectivesPath << "'\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    SpecializationPlan Plan;
    if (!deserializeDirectives(Buf.str(), W->program(),
                               W->applicableClasses(), Plan, Err)) {
      std::cerr << "micac: " << Err << '\n';
      return 1;
    }
    Optimizer Opt(W->program(), W->applicableClasses(), O.Opt);
    std::unique_ptr<CompiledProgram> CP = Opt.compile(Plan);
    std::ostringstream Out;
    RunOptions RO;
    RO.Output = &Out;
    RO.Limits = O.Limits;
    RO.Cancel = ActiveCancel;
    Interpreter I(*CP, RO);
    if (!I.callMain(O.Input)) {
      std::cerr << "micac: " << I.errorMessage() << '\n';
      return failureExit(I.trap());
    }
    std::cout << Out.str();
    return 0;
  }

  // The training profile comes from a saved database when --profile-db is
  // given, otherwise from an instrumented run of the training input.
  if (!O.ProfileDbPath.empty()) {
    Diagnostics ProfileDiags;
    bool Ok = W->loadProfileDb(O.ProfileDbPath, O.Files.front(), ProfileDiags);
    std::string Text = ProfileDiags.toString();
    if (!Text.empty())
      std::cerr << Text;
    if (!Ok) {
      std::cerr << "micac: cannot load profile database '" << O.ProfileDbPath
                << "'\n";
      return 1;
    }
  } else if (O.Configuration == Config::Selective ||
             O.Opt.EnableTypeFeedback) {
    if (!W->collectProfile(O.ProfileInput, Err)) {
      std::cerr << "micac: " << Err << '\n';
      return failureExit(W->lastTrap());
    }
  }
  if (O.DumpBytecode) {
    int Rc = dumpBytecodeListing(*W, O);
    if (Rc)
      return Rc;
  }
  std::optional<ConfigResult> R =
      W->runConfig(O.Configuration, O.Input, Err, O.Sel, O.Opt);
  flushDiags(*W);
  if (!R) {
    std::cerr << "micac: " << Err << '\n';
    return failureExit(W->lastTrap());
  }
  std::cout << R->Output;
  if (O.Stats)
    printStats(*R);
  if (O.TimeReport) {
    PhaseTimer::global().print(std::cout);
    printNodeMix(R->Run);
  }
  return 0;
}

int cmdDump(const CliOptions &O) {
  std::unique_ptr<Workbench> W = load(O);
  std::string Err;
  if (O.Configuration == Config::Selective ||
      O.Opt.EnableTypeFeedback) {
    if (!W->collectProfile(O.ProfileInput, Err)) {
      std::cerr << "micac: " << Err << '\n';
      return failureExit(W->lastTrap());
    }
  }
  if (O.DumpBytecode)
    return dumpBytecodeListing(*W, O);
  std::unique_ptr<CompiledProgram> CP =
      W->compileOnly(O.Configuration, O.Sel, O.Opt);
  flushDiags(*W);
  if (!CP) {
    // The reason (injected failure or deadline) was already rendered via
    // flushDiags or sits in lastTrap().
    if (W->lastTrap().isTrap())
      std::cerr << "micac: " << W->lastTrap().Message << '\n';
    return failureExit(W->lastTrap());
  }
  const Program &P = W->program();
  for (const CompiledMethod &CM : CP->versions()) {
    if (!CM.Body)
      continue;
    std::cout << "-- " << P.methodLabel(CM.Source) << " #" << CM.Index
              << "  tuple=" << tupleToString(CM.Tuple, P.Classes, P.Syms)
              << "  size=" << CM.CodeSize << '\n'
              << printExpr(CM.Body.get(), P.Syms) << "\n\n";
  }
  return 0;
}

int cmdPlan(const CliOptions &O) {
  std::unique_ptr<Workbench> W = load(O);
  std::string Err;
  if (!W->collectProfile(O.ProfileInput, Err)) {
    std::cerr << "micac: " << Err << '\n';
    return failureExit(W->lastTrap());
  }
  Diagnostics PlanDiags;
  SpecializationPlan Plan =
      makePlan(O.Configuration, W->program(), W->applicableClasses(),
               W->passThrough(), &W->profile(), O.Sel, &PlanDiags);
  std::string DiagText = PlanDiags.toString();
  if (!DiagText.empty())
    std::cerr << DiagText;
  std::string Text = serializeDirectives(Plan, W->program());
  if (O.DirectivesPath.empty()) {
    std::cout << Text;
    return 0;
  }
  std::ofstream OS(O.DirectivesPath);
  if (!OS) {
    std::cerr << "micac: cannot write '" << O.DirectivesPath << "'\n";
    return 1;
  }
  OS << Text;
  std::cout << "wrote " << Plan.totalVersions() << " version directives to "
            << O.DirectivesPath << '\n';
  return 0;
}

int cmdReport(const CliOptions &O) {
  PhaseTimer::global().setEnabled(O.TimeReport);
  std::unique_ptr<Workbench> W = load(O);
  std::string Err;
  if (!W->collectProfile(O.ProfileInput, Err)) {
    std::cerr << "micac: " << Err << '\n';
    return failureExit(W->lastTrap());
  }
  TextTable T({"Config", "Dispatches", "Cycles", "Speedup", "Routines",
               "Invoked"});
  uint64_t BaseCycles = 0;
  for (Config C : {Config::Base, Config::Cust, Config::CustMM, Config::CHA,
                   Config::Selective}) {
    std::optional<ConfigResult> R =
        W->runConfig(C, O.Input, Err, O.Sel, O.Opt);
    flushDiags(*W);
    if (!R) {
      std::cerr << "micac: " << Err << '\n';
      return failureExit(W->lastTrap());
    }
    if (C == Config::Base)
      BaseCycles = R->Run.Cycles;
    T.addRow({configName(C), TextTable::count(R->Run.totalDispatches()),
              TextTable::count(R->Run.Cycles),
              TextTable::ratio(static_cast<double>(BaseCycles) /
                               static_cast<double>(R->Run.Cycles)),
              TextTable::count(R->CompiledRoutines),
              TextTable::count(R->InvokedRoutines)});
  }
  T.print(std::cout);
  if (O.TimeReport)
    PhaseTimer::global().print(std::cout);
  return 0;
}

int cmdProfile(const CliOptions &O) {
  std::unique_ptr<Workbench> W = load(O);
  std::string Err;
  if (!W->collectProfile(O.ProfileInput, Err)) {
    std::cerr << "micac: " << Err << '\n';
    return failureExit(W->lastTrap());
  }
  ProfileDb Db;
  Db.forProgram(O.Files.front()).merge(W->profile());
  Diagnostics SaveDiags;
  if (!Db.saveToFile(O.DbPath, SaveDiags)) {
    std::cerr << SaveDiags.toString();
    return 1;
  }
  std::cout << "wrote " << W->profile().numArcs() << " arcs (total weight "
            << TextTable::count(W->profile().totalWeight()) << ") to "
            << O.DbPath << '\n';
  return 0;
}

} // namespace

namespace {

int runCommand(const CliOptions &O) {
  if (O.Command == "check")
    return cmdCheck(O);
  if (O.Command == "run")
    return cmdRun(O);
  if (O.Command == "report")
    return cmdReport(O);
  if (O.Command == "profile")
    return cmdProfile(O);
  if (O.Command == "plan")
    return cmdPlan(O);
  if (O.Command == "dump")
    return cmdDump(O);
  usage(("unknown command '" + O.Command + "'").c_str());
}

/// Writes the --metrics-json / --trace-out sinks after the command ran.
/// A sink failure degrades a successful invocation to exit 1 but never
/// masks the command's own failure code.
int writeObservabilitySinks(const CliOptions &O, int Rc) {
  std::string Err;
  if (!O.TraceOutPath.empty() &&
      !TraceEmitter::global().writeFile(O.TraceOutPath, Err)) {
    std::cerr << "micac: " << Err << '\n';
    Rc = Rc ? Rc : 1;
  }
  if (!O.MetricsJsonPath.empty() &&
      !metrics::writeJsonFile(O.MetricsJsonPath, Err)) {
    std::cerr << "micac: " << Err << '\n';
    Rc = Rc ? Rc : 1;
  }
  return Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string FpError;
  if (!failpoint::armFromEnv(FpError)) {
    std::cerr << "micac: " << FpError << '\n';
    return 2;
  }
  CliOptions O = parseArgs(Argc, Argv);
  if (O.DeadlineMs > 0) {
    GlobalCancel.setDeadline(Deadline::afterMillis(O.DeadlineMs));
    ActiveCancel = &GlobalCancel;
  }
  if (!O.TraceOutPath.empty())
    TraceEmitter::global().setEnabled(true);
  return writeObservabilitySinks(O, runCommand(O));
}

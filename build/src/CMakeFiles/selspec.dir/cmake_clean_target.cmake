file(REMOVE_RECURSE
  "libselspec.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ApplicableClasses.cpp" "src/CMakeFiles/selspec.dir/analysis/ApplicableClasses.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/analysis/ApplicableClasses.cpp.o.d"
  "/root/repo/src/analysis/PassThroughArgs.cpp" "src/CMakeFiles/selspec.dir/analysis/PassThroughArgs.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/analysis/PassThroughArgs.cpp.o.d"
  "/root/repo/src/analysis/ReturnClasses.cpp" "src/CMakeFiles/selspec.dir/analysis/ReturnClasses.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/analysis/ReturnClasses.cpp.o.d"
  "/root/repo/src/analysis/StaticBinding.cpp" "src/CMakeFiles/selspec.dir/analysis/StaticBinding.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/analysis/StaticBinding.cpp.o.d"
  "/root/repo/src/depgraph/DependencyGraph.cpp" "src/CMakeFiles/selspec.dir/depgraph/DependencyGraph.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/depgraph/DependencyGraph.cpp.o.d"
  "/root/repo/src/driver/Pipeline.cpp" "src/CMakeFiles/selspec.dir/driver/Pipeline.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/driver/Pipeline.cpp.o.d"
  "/root/repo/src/driver/Report.cpp" "src/CMakeFiles/selspec.dir/driver/Report.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/driver/Report.cpp.o.d"
  "/root/repo/src/hierarchy/Builtins.cpp" "src/CMakeFiles/selspec.dir/hierarchy/Builtins.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/hierarchy/Builtins.cpp.o.d"
  "/root/repo/src/hierarchy/ClassHierarchy.cpp" "src/CMakeFiles/selspec.dir/hierarchy/ClassHierarchy.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/hierarchy/ClassHierarchy.cpp.o.d"
  "/root/repo/src/hierarchy/Program.cpp" "src/CMakeFiles/selspec.dir/hierarchy/Program.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/hierarchy/Program.cpp.o.d"
  "/root/repo/src/interp/CostModel.cpp" "src/CMakeFiles/selspec.dir/interp/CostModel.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/interp/CostModel.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/selspec.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/lang/Ast.cpp" "src/CMakeFiles/selspec.dir/lang/Ast.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/lang/Ast.cpp.o.d"
  "/root/repo/src/lang/AstPrinter.cpp" "src/CMakeFiles/selspec.dir/lang/AstPrinter.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/lang/AstPrinter.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/selspec.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/selspec.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/lang/Resolver.cpp" "src/CMakeFiles/selspec.dir/lang/Resolver.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/lang/Resolver.cpp.o.d"
  "/root/repo/src/opt/ClassAnalysis.cpp" "src/CMakeFiles/selspec.dir/opt/ClassAnalysis.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/opt/ClassAnalysis.cpp.o.d"
  "/root/repo/src/opt/CompiledProgram.cpp" "src/CMakeFiles/selspec.dir/opt/CompiledProgram.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/opt/CompiledProgram.cpp.o.d"
  "/root/repo/src/opt/Inliner.cpp" "src/CMakeFiles/selspec.dir/opt/Inliner.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/opt/Inliner.cpp.o.d"
  "/root/repo/src/opt/Optimizer.cpp" "src/CMakeFiles/selspec.dir/opt/Optimizer.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/opt/Optimizer.cpp.o.d"
  "/root/repo/src/profile/CallGraph.cpp" "src/CMakeFiles/selspec.dir/profile/CallGraph.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/profile/CallGraph.cpp.o.d"
  "/root/repo/src/profile/ProfileDb.cpp" "src/CMakeFiles/selspec.dir/profile/ProfileDb.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/profile/ProfileDb.cpp.o.d"
  "/root/repo/src/runtime/DispatchTable.cpp" "src/CMakeFiles/selspec.dir/runtime/DispatchTable.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/runtime/DispatchTable.cpp.o.d"
  "/root/repo/src/runtime/Dispatcher.cpp" "src/CMakeFiles/selspec.dir/runtime/Dispatcher.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/runtime/Dispatcher.cpp.o.d"
  "/root/repo/src/runtime/Value.cpp" "src/CMakeFiles/selspec.dir/runtime/Value.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/runtime/Value.cpp.o.d"
  "/root/repo/src/specialize/Directives.cpp" "src/CMakeFiles/selspec.dir/specialize/Directives.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/specialize/Directives.cpp.o.d"
  "/root/repo/src/specialize/SelectiveSpecializer.cpp" "src/CMakeFiles/selspec.dir/specialize/SelectiveSpecializer.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/specialize/SelectiveSpecializer.cpp.o.d"
  "/root/repo/src/specialize/SpecTuple.cpp" "src/CMakeFiles/selspec.dir/specialize/SpecTuple.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/specialize/SpecTuple.cpp.o.d"
  "/root/repo/src/specialize/Strategies.cpp" "src/CMakeFiles/selspec.dir/specialize/Strategies.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/specialize/Strategies.cpp.o.d"
  "/root/repo/src/support/ClassSet.cpp" "src/CMakeFiles/selspec.dir/support/ClassSet.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/support/ClassSet.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/selspec.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/selspec.dir/support/Diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for selspec.
# This may be replaced when dependencies are built.

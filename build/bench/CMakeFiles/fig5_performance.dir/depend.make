# Empty dependencies file for fig5_performance.
# This may be replaced when dependencies are built.

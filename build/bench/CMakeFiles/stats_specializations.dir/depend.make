# Empty dependencies file for stats_specializations.
# This may be replaced when dependencies are built.

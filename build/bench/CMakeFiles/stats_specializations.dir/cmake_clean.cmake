file(REMOVE_RECURSE
  "CMakeFiles/stats_specializations.dir/stats_specializations.cpp.o"
  "CMakeFiles/stats_specializations.dir/stats_specializations.cpp.o.d"
  "stats_specializations"
  "stats_specializations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_specializations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

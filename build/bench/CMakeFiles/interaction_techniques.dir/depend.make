# Empty dependencies file for interaction_techniques.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/interaction_techniques.dir/interaction_techniques.cpp.o"
  "CMakeFiles/interaction_techniques.dir/interaction_techniques.cpp.o.d"
  "interaction_techniques"
  "interaction_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interaction_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

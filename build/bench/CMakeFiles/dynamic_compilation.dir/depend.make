# Empty dependencies file for dynamic_compilation.
# This may be replaced when dependencies are built.

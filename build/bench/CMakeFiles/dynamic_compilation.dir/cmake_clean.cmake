file(REMOVE_RECURSE
  "CMakeFiles/dynamic_compilation.dir/dynamic_compilation.cpp.o"
  "CMakeFiles/dynamic_compilation.dir/dynamic_compilation.cpp.o.d"
  "dynamic_compilation"
  "dynamic_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_cascade.dir/ablation_cascade.cpp.o"
  "CMakeFiles/ablation_cascade.dir/ablation_cascade.cpp.o.d"
  "ablation_cascade"
  "ablation_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

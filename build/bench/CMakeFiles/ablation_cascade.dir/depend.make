# Empty dependencies file for ablation_cascade.
# This may be replaced when dependencies are built.

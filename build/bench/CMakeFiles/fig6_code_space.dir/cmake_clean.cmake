file(REMOVE_RECURSE
  "CMakeFiles/fig6_code_space.dir/fig6_code_space.cpp.o"
  "CMakeFiles/fig6_code_space.dir/fig6_code_space.cpp.o.d"
  "fig6_code_space"
  "fig6_code_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_code_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_code_space.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_base_opts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_base_opts.dir/ablation_base_opts.cpp.o"
  "CMakeFiles/ablation_base_opts.dir/ablation_base_opts.cpp.o.d"
  "ablation_base_opts"
  "ablation_base_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_base_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libselspec_bench_common.a"
)

# Empty dependencies file for selspec_bench_common.
# This may be replaced when dependencies are built.

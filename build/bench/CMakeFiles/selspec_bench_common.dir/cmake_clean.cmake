file(REMOVE_RECURSE
  "CMakeFiles/selspec_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/selspec_bench_common.dir/BenchCommon.cpp.o.d"
  "libselspec_bench_common.a"
  "libselspec_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selspec_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/micac.dir/micac.cpp.o"
  "CMakeFiles/micac.dir/micac.cpp.o.d"
  "micac"
  "micac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

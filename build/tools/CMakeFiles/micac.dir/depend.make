# Empty dependencies file for micac.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/matrix.dir/matrix.cpp.o"
  "CMakeFiles/matrix.dir/matrix.cpp.o.d"
  "matrix"
  "matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for matrix.
# This may be replaced when dependencies are built.

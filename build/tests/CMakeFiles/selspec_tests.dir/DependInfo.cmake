
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ApplicableClassesTests.cpp" "tests/CMakeFiles/selspec_tests.dir/ApplicableClassesTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/ApplicableClassesTests.cpp.o.d"
  "/root/repo/tests/BenchmarkProgramTests.cpp" "tests/CMakeFiles/selspec_tests.dir/BenchmarkProgramTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/BenchmarkProgramTests.cpp.o.d"
  "/root/repo/tests/DepGraphTests.cpp" "tests/CMakeFiles/selspec_tests.dir/DepGraphTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/DepGraphTests.cpp.o.d"
  "/root/repo/tests/DirectivesTests.cpp" "tests/CMakeFiles/selspec_tests.dir/DirectivesTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/DirectivesTests.cpp.o.d"
  "/root/repo/tests/ExtensionsTests.cpp" "tests/CMakeFiles/selspec_tests.dir/ExtensionsTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/ExtensionsTests.cpp.o.d"
  "/root/repo/tests/HierarchyTests.cpp" "tests/CMakeFiles/selspec_tests.dir/HierarchyTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/HierarchyTests.cpp.o.d"
  "/root/repo/tests/InlinerTests.cpp" "tests/CMakeFiles/selspec_tests.dir/InlinerTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/InlinerTests.cpp.o.d"
  "/root/repo/tests/InterpreterTests.cpp" "tests/CMakeFiles/selspec_tests.dir/InterpreterTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/InterpreterTests.cpp.o.d"
  "/root/repo/tests/LexerTests.cpp" "tests/CMakeFiles/selspec_tests.dir/LexerTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/LexerTests.cpp.o.d"
  "/root/repo/tests/OptAnalysisTests.cpp" "tests/CMakeFiles/selspec_tests.dir/OptAnalysisTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/OptAnalysisTests.cpp.o.d"
  "/root/repo/tests/OptimizerTests.cpp" "tests/CMakeFiles/selspec_tests.dir/OptimizerTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/OptimizerTests.cpp.o.d"
  "/root/repo/tests/PaperExampleTests.cpp" "tests/CMakeFiles/selspec_tests.dir/PaperExampleTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/PaperExampleTests.cpp.o.d"
  "/root/repo/tests/ParserTests.cpp" "tests/CMakeFiles/selspec_tests.dir/ParserTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/ParserTests.cpp.o.d"
  "/root/repo/tests/PassThroughTests.cpp" "tests/CMakeFiles/selspec_tests.dir/PassThroughTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/PassThroughTests.cpp.o.d"
  "/root/repo/tests/PipelineTests.cpp" "tests/CMakeFiles/selspec_tests.dir/PipelineTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/PipelineTests.cpp.o.d"
  "/root/repo/tests/ProfileTests.cpp" "tests/CMakeFiles/selspec_tests.dir/ProfileTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/ProfileTests.cpp.o.d"
  "/root/repo/tests/PropertyTests.cpp" "tests/CMakeFiles/selspec_tests.dir/PropertyTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/PropertyTests.cpp.o.d"
  "/root/repo/tests/RuntimeTests.cpp" "tests/CMakeFiles/selspec_tests.dir/RuntimeTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/RuntimeTests.cpp.o.d"
  "/root/repo/tests/SpecializerTests.cpp" "tests/CMakeFiles/selspec_tests.dir/SpecializerTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/SpecializerTests.cpp.o.d"
  "/root/repo/tests/StdlibTests.cpp" "tests/CMakeFiles/selspec_tests.dir/StdlibTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/StdlibTests.cpp.o.d"
  "/root/repo/tests/StrategiesTests.cpp" "tests/CMakeFiles/selspec_tests.dir/StrategiesTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/StrategiesTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/selspec_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/selspec_tests.dir/SupportTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selspec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

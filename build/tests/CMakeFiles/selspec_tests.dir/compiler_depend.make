# Empty compiler generated dependencies file for selspec_tests.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/selspec_tests[1]_include.cmake")
add_test(micac_check "/root/repo/build/tools/micac" "check" "richards.mica")
set_tests_properties(micac_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micac_run_selective "/root/repo/build/tools/micac" "run" "richards.mica" "--input" "3" "--stats")
set_tests_properties(micac_run_selective PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micac_report "/root/repo/build/tools/micac" "report" "instsched.mica" "--input" "4" "--profile-input" "3")
set_tests_properties(micac_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micac_plan "/root/repo/build/tools/micac" "plan" "instsched.mica" "--input" "4" "--threshold" "50")
set_tests_properties(micac_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micac_bad_file "/root/repo/build/tools/micac" "check" "no_such.mica")
set_tests_properties(micac_bad_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_paper "/root/repo/build/examples/paper_example")
set_tests_properties(example_paper PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_matrix "/root/repo/build/examples/matrix")
set_tests_properties(example_matrix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;46;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_incremental "/root/repo/build/examples/incremental")
set_tests_properties(example_incremental PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micac_dump "/root/repo/build/tools/micac" "dump" "instsched.mica" "--config" "cha" "--input" "4")
set_tests_properties(micac_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(micac_directives_roundtrip "sh" "-c" "/root/repo/build/tools/micac plan richards.mica --input 50 --threshold 100 --directives rich.dir && /root/repo/build/tools/micac run richards.mica --input 5 --directives rich.dir")
set_tests_properties(micac_directives_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;50;add_test;/root/repo/tests/CMakeLists.txt;0;")
